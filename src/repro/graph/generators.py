"""Deterministic graph generators for tests and benchmarks.

All generators take an explicit ``seed`` and return
:class:`~repro.graph.dynamic_graph.DynamicGraph` instances, so property tests
and ablation benchmarks are reproducible without network or dataset access.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import ConfigError
from repro.graph.dynamic_graph import DynamicGraph


def gnp_random_graph(n: int, p: float, seed: int = 0) -> DynamicGraph:
    """Erdos–Renyi G(n, p) on integer nodes ``0..n-1``."""
    if n < 0:
        raise ConfigError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = DynamicGraph()
    for i in range(n):
        graph.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


def complete_clique(n: int) -> DynamicGraph:
    """K_n on integer nodes ``0..n-1``."""
    graph = DynamicGraph()
    for i in range(n):
        graph.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j)
    return graph


def cycle_graph(n: int) -> DynamicGraph:
    """C_n on integer nodes ``0..n-1``."""
    if n < 3:
        raise ConfigError(f"cycle needs n >= 3, got {n}")
    graph = DynamicGraph()
    for i in range(n):
        graph.add_node(i)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def random_mqc(
    n: int, seed: int = 0, strict: bool = True, max_tries: int = 500
) -> DynamicGraph:
    """A random majority quasi clique on ``n`` nodes.

    Construction: start from K_n and repeatedly remove random edges while the
    minimum degree stays at or above the majority threshold.

    ``strict=True`` (default) keeps every degree **strictly** above
    (n - 1) / 2 — "connected with a majority of the remaining nodes", the
    paper's verbal MQC definition, for which Theorem 1 (MQC => SCP) holds.
    ``strict=False`` allows degree exactly ceil((n - 1) / 2); at odd ``n``
    this admits boundary graphs such as the 5-cycle which satisfy the
    numeric gamma >= 1/2 condition yet contain no short cycle (see the
    Theorem 1 boundary-case test and DESIGN.md).
    """
    from repro.graph.quasi_clique import is_majority_quasi_clique

    if n < 2:
        raise ConfigError(f"MQC needs n >= 2, got {n}")
    rng = random.Random(seed)
    graph = complete_clique(n)
    if strict:
        need = (n - 1) // 2 + 1  # smallest integer > (n-1)/2
    else:
        need = (n - 1 + 1) // 2  # ceil((n-1)/2)
    edges = [(u, v) for u, v, _ in graph.edges()]
    rng.shuffle(edges)
    for u, v in edges[:max_tries]:
        if graph.degree(u) > need and graph.degree(v) > need:
            graph.remove_edge(u, v)
    assert is_majority_quasi_clique(graph)
    return graph


def glued_cycles(
    cycle_sizes: Sequence[int], seed: int = 0
) -> Tuple[DynamicGraph, List[List[int]]]:
    """A chain of short cycles, consecutive cycles glued along one edge.

    Returns the graph and the node lists of each cycle.  With every
    ``cycle_sizes[i] in (3, 4)`` the whole chain is one SCP cluster, making
    this the canonical positive fixture for the atom-gluing model.
    """
    for size in cycle_sizes:
        if size < 3:
            raise ConfigError(f"cycle sizes must be >= 3, got {size}")
    graph = DynamicGraph()
    cycles: List[List[int]] = []
    next_node = 0
    shared: Tuple[int, int] | None = None
    rng = random.Random(seed)
    for size in cycle_sizes:
        if shared is None:
            nodes = list(range(next_node, next_node + size))
            next_node += size
            for node in nodes:
                graph.add_node(node)
            for i, node in enumerate(nodes):
                graph.add_edge(node, nodes[(i + 1) % size])
        else:
            fresh = list(range(next_node, next_node + size - 2))
            next_node += size - 2
            for node in fresh:
                graph.add_node(node)
            nodes = [shared[0], *fresh, shared[1]]
            for a, b in zip(nodes, nodes[1:]):
                graph.add_edge(a, b)
            # closing edge already exists: it is the shared edge
        cycles.append(nodes)
        # pick the edge shared with the next cycle
        idx = rng.randrange(len(nodes))
        shared = (nodes[idx], nodes[(idx + 1) % len(nodes)])
    return graph, cycles


def two_triangles_bowtie() -> DynamicGraph:
    """Two triangles sharing exactly one node — two separate SCP clusters."""
    graph = DynamicGraph()
    for node in range(5):
        graph.add_node(node)
    for u, v in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]:
        graph.add_edge(u, v)
    return graph


__all__ = [
    "gnp_random_graph",
    "complete_clique",
    "cycle_graph",
    "random_mqc",
    "glued_cycles",
    "two_triangles_bowtie",
]
