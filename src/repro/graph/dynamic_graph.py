"""Weighted undirected dynamic graph used as the AKG substrate.

The graph is a thin, fast adjacency-dict structure supporting the operations
the cluster-maintenance layer needs: O(1) amortized node/edge insertion and
deletion, O(deg) neighbourhood iteration, and O(min(deg)) common-neighbour
queries.  Nodes are arbitrary hashable objects (keywords are strings).

Edges are undirected; the canonical identity of an edge is
``edge_key(u, v) == tuple(sorted((u, v)))`` so that the same frozen key can be
used in cluster bookkeeping regardless of insertion order.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, Optional, Tuple

from repro.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
)

Node = Hashable
EdgeKey = Tuple[Node, Node]

WeightListener = Callable[[Node, Node, float, float], None]
"""Callback ``(u, v, old_weight, new_weight)`` fired by
:meth:`DynamicGraph.set_edge_weight` when an edge's weight actually changes.
Structural mutations (add/remove) do not fire it — the cluster maintainer
already observes those directly."""


def edge_key(u: Node, v: Node) -> EdgeKey:
    """Canonical undirected identity of the edge between ``u`` and ``v``.

    The two endpoints are ordered by ``repr`` when they are not directly
    comparable; for homogeneous node types (the common case) plain comparison
    is used.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class DynamicGraph:
    """Undirected graph with weighted edges and dynamic updates.

    The class deliberately exposes a small, explicit API instead of the full
    networkx surface; every method is O(1) or O(degree), which is what makes
    the local cluster maintenance of Section 5 cheap.
    """

    __slots__ = ("_adj", "_num_edges", "_weight_listener")

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        self._num_edges = 0
        self._weight_listener: Optional[WeightListener] = None

    def set_weight_listener(self, listener: Optional[WeightListener]) -> None:
        """Install (or clear, with None) the optional weight-change hook.

        The hook is how weight deltas reach the change log without the graph
        depending on higher layers; when unset, weight updates cost exactly
        what they did before the hook existed.
        """
        self._weight_listener = listener

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node) -> None:
        """Insert ``node``; raises :class:`DuplicateNodeError` if present."""
        if node in self._adj:
            raise DuplicateNodeError(f"node already in graph: {node!r}")
        self._adj[node] = {}

    def ensure_node(self, node: Node) -> bool:
        """Insert ``node`` if absent.  Returns True when it was inserted."""
        if node in self._adj:
            return False
        self._adj[node] = {}
        return True

    def remove_node(self, node: Node) -> list[EdgeKey]:
        """Delete ``node`` and all incident edges.

        Returns the list of removed edge keys (useful for cluster repair).
        """
        neighbours = self._adj.pop(node, None)
        if neighbours is None:
            raise NodeNotFoundError(node)
        removed = []
        for other in neighbours:
            del self._adj[other][node]
            removed.append(edge_key(node, other))
        self._num_edges -= len(removed)
        return removed

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def nodes(self) -> Iterator[Node]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------ edges

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Insert edge ``(u, v)``; both endpoints must already exist.

        Raises
        ------
        NodeNotFoundError
            If either endpoint is absent.
        DuplicateEdgeError
            If the edge is already present (use :meth:`set_edge_weight`).
        GraphError
            For self-loops, which the AKG never contains.
        """
        if u == v:
            raise DuplicateEdgeError(f"self-loops are not allowed: {u!r}")
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        if v in self._adj[u]:
            raise DuplicateEdgeError(f"edge already in graph: ({u!r}, {v!r})")
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._num_edges += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1

    def has_edge(self, u: Node, v: Node) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def edge_weight(self, u: Node, v: Node) -> float:
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def set_edge_weight(self, u: Node, v: Node, weight: float) -> None:
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        old = self._adj[u][v]
        if old == weight:
            return
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        if self._weight_listener is not None:
            self._weight_listener(u, v, old, weight)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate each undirected edge exactly once as ``(u, v, weight)``."""
        seen: set[EdgeKey] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key[0], key[1], w

    def edge_keys(self) -> Iterator[EdgeKey]:
        for u, v, _ in self.edges():
            yield (u, v)

    @property
    def num_edges(self) -> int:
        """Edge count, maintained as an O(1) counter.

        The engine snapshots this every quantum (``AkgQuantumStats``), so a
        recount over the adjacency lists would be a per-quantum O(graph)
        term — exactly what the delta-driven AKG stage forbids.
        """
        return self._num_edges

    # ------------------------------------------------------- neighbourhoods

    def neighbors(self, node: Node) -> Iterator[Node]:
        try:
            return iter(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbor_weights(self, node: Node) -> Dict[Node, float]:
        """Direct (read-only by convention) view of a node's adjacency map."""
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def common_neighbors(self, u: Node, v: Node) -> list[Node]:
        """Nodes adjacent to both ``u`` and ``v`` (O(min degree))."""
        nu, nv = self._adj.get(u), self._adj.get(v)
        if nu is None:
            raise NodeNotFoundError(u)
        if nv is None:
            raise NodeNotFoundError(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return [n for n in nu if n in nv]

    # ------------------------------------------------------------- utilities

    def subgraph_adjacency(
        self, nodes: Iterable[Node]
    ) -> Dict[Node, Dict[Node, float]]:
        """Adjacency dict of the subgraph induced by ``nodes``."""
        keep = set(nodes)
        return {
            n: {m: w for m, w in self._adj[n].items() if m in keep}
            for n in keep
            if n in self._adj
        }

    def copy(self) -> "DynamicGraph":
        clone = DynamicGraph()
        clone._adj = {n: dict(nbrs) for n, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot: node list plus weighted edge list.

        Nodes and edges are recorded in sorted order, making the snapshot a
        pure function of the graph *contents*: two graphs holding the same
        nodes/edges/weights serialize identically no matter how their
        adjacency was built (insertion history, a prior restore, or the
        sharded front-end).  No engine semantics depend on adjacency
        iteration order — every consumer sorts before acting (DESIGN.md
        Sections 6–7) — so restoring in sorted order is behaviour-neutral.
        """
        return {
            "nodes": sorted(self._adj, key=repr),
            "edges": sorted(
                ([u, v, w] for u, v, w in self.edges()),
                key=lambda edge: (repr(edge[0]), repr(edge[1])),
            ),
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the graph in place from :meth:`to_state` output.

        The weight listener (if any) is left installed but is *not* fired:
        restoring is not a mutation of the checkpointed world.
        """
        self._adj = {node: {} for node in state["nodes"]}
        self._num_edges = 0
        for u, v, w in state["edges"]:
            self._adj[u][v] = w
            self._adj[v][u] = w
            self._num_edges += 1

    def adjacency(self) -> Dict[Node, Dict[Node, float]]:
        """The raw adjacency mapping (treat as read-only)."""
        return self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
        )


__all__ = ["DynamicGraph", "Node", "EdgeKey", "edge_key", "WeightListener"]
