"""Hot-standby follower: tail a delta log, stay warm, promote on demand.

A :class:`FollowerSession` holds the leader's *serialized state tree* and
keeps it current by applying delta-log records (:mod:`repro.api.deltalog`)
— it never runs the detection pipeline, so staying warm costs patch
application only, no tokenization/AKG/ranking work.  When the leader dies,
``promote()`` rebuilds a live :class:`~repro.api.session.DetectorSession`
from the tree, and the execution-agnostic resume guarantee (DESIGN.md
Sections 6–9) makes the promoted session bit-identical to the uninterrupted
run from the last logged quantum onward — under any worker count or
backend, not just the leader's.

The follower reads through the :class:`~repro.api.deltalog.DeltaTransport`
seam; the default :class:`~repro.api.deltalog.FileTailTransport` tails a
delta-checkpoint directory on a shared filesystem, and a future socket
transport plugs in without touching this class.  ``catch_up()`` handles
leader compaction transparently: on a generation flip it fast-forwards
(keeps its state and restarts the tail) when its position matches the new
base, otherwise it reloads the fresh base.

Data-loss window: the leader logs one record per *completed* quantum, so a
crash loses at most the partially ingested quantum in the leader's pending
buffer.  A failover harness re-feeds the stream from the last logged
quantum boundary (``current_quantum``) to continue exactly.
"""

from __future__ import annotations

import copy
import time
from typing import Optional

from repro.api.checkpoint import save_checkpoint
from repro.api.deltalog import (
    DeltaTransport,
    FileTailTransport,
    apply_record,
)
from repro.errors import CheckpointError


class FollowerSession:
    """Warm standby over a leader's delta checkpoint.

    ``path`` names the delta-checkpoint directory (ignored when an explicit
    ``transport`` is passed — the seam for non-filesystem replication).
    Construction loads the current base and replays the log; ``catch_up()``
    applies anything appended since; ``promote()`` turns the follower into
    a live session.  A promoted follower is spent: further ``catch_up`` /
    ``promote`` calls raise :class:`CheckpointError`, because the live
    session now owns the state and the tree handed over is no longer
    tracking the log.
    """

    def __init__(
        self, path=None, *, transport: Optional[DeltaTransport] = None
    ) -> None:
        if transport is None:
            if path is None:
                raise CheckpointError(
                    "FollowerSession needs a delta-checkpoint path or an "
                    "explicit transport"
                )
            transport = FileTailTransport(path)
        self._transport = transport
        self._promoted = False
        self.records_applied = 0
        self.generations_seen = 0
        manifest = transport.manifest()
        self._load_generation(manifest)

    # ------------------------------------------------------------ tailing

    def _load_generation(self, manifest: dict) -> None:
        """Load a generation's base and replay its whole log."""
        state = self._transport.load_base(manifest)
        if state.get("quantum") != manifest["base_quantum"]:
            raise CheckpointError(
                f"delta checkpoint base is at quantum "
                f"{state.get('quantum')!r} but the manifest says "
                f"{manifest['base_quantum']!r}"
            )
        self._manifest = manifest
        self._state = state
        self._offset = 0
        self.generations_seen += 1
        self._apply_new_records()

    def _apply_new_records(self) -> int:
        records, self._offset = self._transport.read_records(
            self._manifest, self._offset
        )
        for record in records:
            self._state = apply_record(self._state, record)
            self.records_applied += 1
        return len(records)

    def catch_up(self) -> int:
        """Apply every record the leader has logged since the last call.

        Returns the number of quanta applied.  Handles a leader compaction
        (generation flip) transparently: if the new base is exactly where
        the follower already stands, only the tail position resets
        (fast-forward — no base reload); otherwise the fresh base is
        loaded.  A log that vanishes mid-read because the leader compacted
        between the manifest poll and the log read is retried once against
        the new manifest.
        """
        if self._promoted:
            raise CheckpointError(
                "this follower was promoted; the live session owns the "
                "state now — open a new FollowerSession to keep tailing"
            )
        applied = 0
        manifest = self._transport.manifest()
        if manifest["generation"] != self._manifest["generation"]:
            if manifest["base_quantum"] == self._state["quantum"]:
                # Compaction snapshotted exactly our position: keep the
                # warm state, just tail the new log from its start.
                before = self.records_applied
                self._manifest = manifest
                self._offset = 0
                self.generations_seen += 1
                self._apply_new_records()
                return self.records_applied - before
            before = self.records_applied
            self._load_generation(manifest)
            return self.records_applied - before
        try:
            applied = self._apply_new_records()
        except CheckpointError:
            # The leader may have compacted between our manifest poll and
            # the log read, unlinking the log we were tailing.  Retry once
            # against the fresh manifest; a genuine error recurs.
            fresh = self._transport.manifest()
            if fresh["generation"] == self._manifest["generation"]:
                raise
            before = self.records_applied
            self._load_generation(fresh)
            return self.records_applied - before
        return applied

    def wait_for_quantum(
        self, quantum: int, *, timeout: float = 30.0, poll: float = 0.05
    ) -> None:
        """Poll ``catch_up`` until the state reaches ``quantum``.

        Test/benchmark convenience for file-transport followers; raises
        :class:`CheckpointError` on timeout so a stuck leader surfaces as
        a readable failure instead of a hang.
        """
        deadline = time.monotonic() + timeout
        while self._state["quantum"] < quantum:
            self.catch_up()
            if self._state["quantum"] >= quantum:
                break
            if time.monotonic() >= deadline:
                raise CheckpointError(
                    f"follower timed out waiting for quantum {quantum}; "
                    f"still at quantum {self._state['quantum']}"
                )
            time.sleep(poll)

    # ------------------------------------------------------------ promote

    def promote(
        self,
        *,
        noun_tagger=None,
        tokenizer=None,
        extractor=None,
        workers=None,
        shard_count=None,
        worker_backend=None,
        backend=None,
        profile: bool = False,
    ):
        """Turn the warm state into a live :class:`DetectorSession`.

        The promote contract (DESIGN.md Section 10): the returned session
        continues from the last logged quantum with an empty pending
        buffer, and — fed the stream from that quantum boundary on — emits
        reports, sink events, histories, and checkpoints bit-identical to
        the uninterrupted run.  Execution arguments (``workers``,
        ``shard_count``, ``backend``) choose how the promoted session runs
        and do not affect results.  Custom extractors/taggers must be
        re-supplied, exactly as with ``open_session(resume=...)``.
        """
        if self._promoted:
            raise CheckpointError("this follower was already promoted")
        from repro.api.session import DetectorSession

        session = DetectorSession._from_state_tree(
            copy.deepcopy(self._state),
            noun_tagger=noun_tagger,
            tokenizer=tokenizer,
            extractor=extractor,
            workers=workers,
            shard_count=shard_count,
            worker_backend=worker_backend,
            backend=backend,
            profile=profile,
        )
        self._promoted = True
        return session

    def snapshot(self, path) -> None:
        """Write the follower's current state as a monolithic checkpoint.

        Useful for off-leader snapshotting: the follower pays the full
        serialization cost so the leader never has to.
        """
        save_checkpoint(path, self._state)

    # ------------------------------------------------------------ introspection

    @property
    def current_quantum(self) -> int:
        """Quantum index of the last applied record (or the base)."""
        return self._state["quantum"]

    @property
    def generation(self) -> int:
        """Delta-checkpoint generation currently being tailed."""
        return self._manifest["generation"]

    @property
    def promoted(self) -> bool:
        return self._promoted


__all__ = ["FollowerSession"]
