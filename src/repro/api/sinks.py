"""Subscriber sinks: where a session delivers cluster lifecycle events.

A sink is anything with an ``emit(event)`` method (the :class:`Sink`
protocol).  Two ready-made implementations cover the common consumption
patterns: :class:`CallbackSink` for push-style handlers invoked inline on
the ingesting thread, and :class:`QueueSink` for pull-style consumers that
drain batches at their own pace (a bounded queue drops the *oldest*
events first, matching a dashboard that only cares about fresh state).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Iterator, List, Optional, Protocol, runtime_checkable

from repro.api.session_events import SessionEvent


@runtime_checkable
class Sink(Protocol):
    """Receiver of :class:`~repro.api.session_events.SessionEvent` objects.

    ``emit`` is called synchronously from the session's ingest path, in
    deterministic order, once per delivered event; implementations should
    return quickly (hand off to a queue/executor for slow work).
    """

    def emit(self, event: SessionEvent) -> None:
        """Deliver one event."""
        ...


class CallbackSink:
    """Adapts a plain callable into a sink (``fn(event)`` per delivery)."""

    def __init__(self, fn: Callable[[SessionEvent], None]) -> None:
        self.fn = fn

    def emit(self, event: SessionEvent) -> None:
        """Invoke the wrapped callable with the event."""
        self.fn(event)


class QueueSink:
    """Buffers delivered events for pull-style consumption.

    ``maxlen`` bounds the buffer (oldest events are discarded once full and
    counted in ``dropped``); ``drain()`` empties it in delivery order.
    ``on_drop`` is invoked with each evicted event so consumers — the
    serving layer's fan-out hub, an alerting path — can *observe* evictions
    instead of only counting them.  The callback runs on the emitting
    thread, outside the sink's lock, after the eviction has been counted.

    Emit and drain are serialized by an internal lock: a producer on the
    session's ingest thread and a consumer draining from another thread
    (the :mod:`repro.serve` fan-out pattern) never lose or duplicate an
    event between them.
    """

    def __init__(
        self,
        maxlen: Optional[int] = None,
        on_drop: Optional[Callable[[SessionEvent], None]] = None,
    ) -> None:
        self._events: Deque[SessionEvent] = deque()
        self._lock = threading.Lock()
        self.maxlen = maxlen
        self.on_drop = on_drop
        self.dropped = 0

    def emit(self, event: SessionEvent) -> None:
        """Append one event, evicting the oldest first when at ``maxlen``.

        Eviction happens *before* the append so the buffer never holds
        more than ``maxlen`` events, even transiently — a concurrent
        ``drain()``/``__iter__`` can otherwise observe ``maxlen + 1``.
        A ``maxlen`` of zero accepts nothing and counts every event as
        dropped.
        """
        evicted = None
        with self._lock:
            if self.maxlen is not None and len(self._events) >= self.maxlen:
                if self.maxlen == 0:
                    self.dropped += 1
                    evicted = event
                else:
                    evicted = self._events.popleft()
                    self.dropped += 1
                    self._events.append(event)
            else:
                self._events.append(event)
        if evicted is not None and self.on_drop is not None:
            self.on_drop(evicted)

    def drain(self) -> List[SessionEvent]:
        """Remove and return everything buffered, in delivery order."""
        with self._lock:
            out = list(self._events)
            self._events.clear()
        return out

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SessionEvent]:
        with self._lock:
            return iter(list(self._events))


__all__ = ["Sink", "CallbackSink", "QueueSink"]
