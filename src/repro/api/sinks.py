"""Subscriber sinks: where a session delivers cluster lifecycle events.

A sink is anything with an ``emit(event)`` method (the :class:`Sink`
protocol).  Two ready-made implementations cover the common consumption
patterns: :class:`CallbackSink` for push-style handlers invoked inline on
the ingesting thread, and :class:`QueueSink` for pull-style consumers that
drain batches at their own pace (a bounded queue drops the *oldest*
events first, matching a dashboard that only cares about fresh state).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional, Protocol, runtime_checkable

from repro.api.session_events import SessionEvent


@runtime_checkable
class Sink(Protocol):
    """Receiver of :class:`~repro.api.session_events.SessionEvent` objects.

    ``emit`` is called synchronously from the session's ingest path, in
    deterministic order, once per delivered event; implementations should
    return quickly (hand off to a queue/executor for slow work).
    """

    def emit(self, event: SessionEvent) -> None:
        """Deliver one event."""
        ...


class CallbackSink:
    """Adapts a plain callable into a sink (``fn(event)`` per delivery)."""

    def __init__(self, fn: Callable[[SessionEvent], None]) -> None:
        self.fn = fn

    def emit(self, event: SessionEvent) -> None:
        """Invoke the wrapped callable with the event."""
        self.fn(event)


class QueueSink:
    """Buffers delivered events for pull-style consumption.

    ``maxlen`` bounds the buffer (oldest events are discarded once full and
    counted in ``dropped``); ``drain()`` empties it in delivery order.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        self._events: Deque[SessionEvent] = deque()
        self.maxlen = maxlen
        self.dropped = 0

    def emit(self, event: SessionEvent) -> None:
        """Append one event, evicting the oldest first when at ``maxlen``.

        Eviction happens *before* the append so the buffer never holds
        more than ``maxlen`` events, even transiently — a concurrent
        ``drain()``/``__iter__`` can otherwise observe ``maxlen + 1``.
        A ``maxlen`` of zero accepts nothing and counts every event as
        dropped.
        """
        if self.maxlen is not None and len(self._events) >= self.maxlen:
            if self.maxlen == 0:
                self.dropped += 1
                return
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)

    def drain(self) -> List[SessionEvent]:
        """Remove and return everything buffered, in delivery order."""
        out = list(self._events)
        self._events.clear()
        return out

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SessionEvent]:
        return iter(list(self._events))


__all__ = ["Sink", "CallbackSink", "QueueSink"]
