"""repro.api — the streaming session API.

The public surface for long-lived detection: :func:`open_session` returns a
:class:`DetectorSession` with incremental ingestion (``ingest`` /
``ingest_many``), push-based lifecycle subscription (``subscribe`` with
callback or queue sinks receiving ``EMERGING`` / ``GROWING`` / ``DYING`` /
``RANK_CHANGED`` events), and checkpoint/restore (``snapshot`` +
``open_session(resume=...)``).  See DESIGN.md Section 6 for the lifecycle
and checkpoint contracts, and :mod:`repro.pipeline` for the stage objects a
session drives.
"""

from repro.api.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    decode_state,
    encode_state,
    fsync_dir,
    load_checkpoint,
    save_checkpoint,
)
from repro.api.deltalog import (
    DELTA_FORMAT,
    DELTA_VERSION,
    DeltaCheckpointWriter,
    DeltaTransport,
    FileTailTransport,
    diff_trees,
    patch_tree,
    read_delta_checkpoint,
)
from repro.api.follower import FollowerSession
from repro.api.session import DetectorSession, Subscription, open_session
from repro.api.session_events import EventKind, SessionEvent
from repro.api.sinks import CallbackSink, QueueSink, Sink

__all__ = [
    "open_session",
    "DetectorSession",
    "FollowerSession",
    "Subscription",
    "EventKind",
    "SessionEvent",
    "Sink",
    "CallbackSink",
    "QueueSink",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "DELTA_FORMAT",
    "DELTA_VERSION",
    "DeltaCheckpointWriter",
    "DeltaTransport",
    "FileTailTransport",
    "save_checkpoint",
    "load_checkpoint",
    "read_delta_checkpoint",
    "encode_state",
    "decode_state",
    "diff_trees",
    "patch_tree",
    "fsync_dir",
]
