"""Long-lived, resumable detector sessions over unbounded streams.

:func:`open_session` is the public entry point of the redesigned API: it
returns a :class:`DetectorSession` that owns the engine components and
drives the composable stage pipeline of :mod:`repro.pipeline` one quantum at
a time.  Compared with the batch-shaped ``EventDetector`` facade (which now
delegates here), a session adds the three capabilities a production
deployment needs:

* **push-based subscription** — :meth:`DetectorSession.subscribe` delivers
  ``EMERGING`` / ``GROWING`` / ``DYING`` / ``RANK_CHANGED`` notifications
  (:mod:`repro.api.session_events`) to callback or queue sinks, filtered
  through the report stage's threshold index (optionally top-k limited);
* **incremental ingestion** — :meth:`DetectorSession.ingest` /
  :meth:`DetectorSession.ingest_many` accept messages whenever they arrive;
  partial quanta stay buffered across calls (and across checkpoints)
  instead of being force-flushed;
* **checkpoint/restore** — :meth:`DetectorSession.snapshot` serializes the
  full detector state through the layers' ``to_state()`` hooks, and
  ``open_session(resume=path)`` reconstructs a session that continues the
  stream *bit-identically* to one that never stopped (DESIGN.md Section 6).

Typical use::

    from repro.api import open_session, QueueSink, EventKind

    session = open_session(DetectorConfig(quantum_size=160))
    inbox = QueueSink()
    session.subscribe(inbox, kinds={EventKind.EMERGING, EventKind.DYING})
    for report in session.ingest_many(stream):
        for note in inbox.drain():
            print(note.kind.value, sorted(note.keywords))
    session.snapshot("detector.ckpt")          # later:
    session = open_session(resume="detector.ckpt")
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dataclass_field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.akg.builder import AkgBuilder, BatchedAkgBuilder
from repro.akg.ckg_stats import CkgStatsTracker
from repro.api.checkpoint import load_checkpoint, save_checkpoint
from repro.api.session_events import EventKind, SessionEvent
from repro.api.sinks import CallbackSink, Sink
from repro.config import DetectorConfig
from repro.core.events import EventRecord, EventTracker
from repro.core.incremental import IncrementalRanker
from repro.core.maintenance import ClusterMaintainer
from repro.core.ranking import minimum_rank
from repro.errors import CheckpointError, ConfigError, GraphError, PipelineError
from repro.extract import (
    EntityExtractor,
    KeywordExtractor,
    extractor_spec,
    is_reconstructible,
    make_extractor,
)
from repro.pipeline.report_index import ThresholdIndex
from repro.pipeline.reports import QuantumReport, ReportedEvent, StageTimings
from repro.pipeline.stages import (
    Pipeline,
    QuantumContext,
    ReportStage,
    build_stages,
)
from repro.stream.messages import Message
from repro.stream.sources import message_from_record, message_to_record
from repro.stream.window import QuantumBatcher
from repro.text.pos import NounTagger


class _Notified(NamedTuple):
    """Last-notified state of one reported event (the lifecycle diff base)."""

    rank: float
    size: int
    keywords: frozenset


@dataclass
class Subscription:
    """Handle returned by :meth:`DetectorSession.subscribe`.

    ``kinds`` restricts delivery to the given lifecycle transitions.
    ``top_k`` scopes the subscription to the report index's top-k *view*:
    an event is announced with an ``EMERGING`` delivery when it first enters
    the view (even if it originally emerged further down the ranking),
    receives its ``GROWING``/``RANK_CHANGED`` updates while inside it, and
    is closed by its ``DYING`` — so the subscriber always sees a consistent
    announce/update/close stream.  ``_announced`` is that per-subscription
    memory; it is not part of session checkpoints (sinks re-subscribe after
    a restore).  ``unsubscribe()`` detaches the sink.
    """

    sink: Sink
    kinds: frozenset
    top_k: Optional[int]
    _session: "DetectorSession"
    _announced: Set[int] = dataclass_field(default_factory=set)

    def unsubscribe(self) -> None:
        """Stop delivering events to this subscription's sink."""
        try:
            self._session._subscriptions.remove(self)
        except ValueError:
            pass


class DetectorSession:
    """One long-lived detection session over one (resumable) stream."""

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        *,
        noun_tagger: Optional[NounTagger] = None,
        tokenizer=None,
        extractor: Optional[EntityExtractor] = None,
        oracle_ranking: bool = False,
        oracle_akg: bool = False,
        worker_backend: Optional[str] = None,
        overlap: bool = False,
        profile: bool = False,
    ) -> None:
        """Build a fresh session (use :func:`open_session` in client code).

        The ingestion extractor comes from ``config.extractor`` /
        ``config.extractor_options`` (the registry path — checkpointable,
        shardable); ``extractor`` overrides it with an explicit
        :class:`~repro.extract.base.EntityExtractor` instance, and
        ``tokenizer`` is the legacy shorthand for a
        :class:`~repro.extract.keyword.KeywordExtractor` around a custom
        text tokenizer.  ``noun_tagger`` overrides the report-time noun
        filter (applied only when the extractor is ``textual``), and the
        ``oracle_*`` flags swap in the from-scratch verification baselines
        for the AKG and rank stages.  With ``config.workers > 1`` (or an
        explicit ``shard_count``) the extract/AKG stages run on the
        entity-range-sharded front-end (:mod:`repro.parallel`);
        ``worker_backend`` forces its execution backend
        (``process``/``thread``/``serial``, default auto) — an execution
        knob only, results are bit-identical either way.
        ``config.backend`` selects the hot-path implementation
        (``reference``/``batched``, DESIGN.md Section 9) — also execution
        only.  ``overlap=True`` double-buffers :meth:`ingest_many` on the
        sharded front-end: quantum *q*'s serial tail (exchange merge,
        maintenance, ranking, reporting) runs on a background thread while
        quantum *q+1*'s extract+scatter proceeds on the calling thread —
        again execution only, reports and sink events stay bit-identical
        (DESIGN.md Section 12).  ``profile=True`` runs the stage pipeline
        under cProfile; read the accumulated data with
        :meth:`profile_stats`.
        """
        self.config = config if config is not None else DetectorConfig()
        if extractor is not None and tokenizer is not None:
            raise ConfigError(
                "pass either extractor or tokenizer, not both: a custom "
                "tokenizer is shorthand for KeywordExtractor(tokenizer=...)"
            )
        # Function-valued state cannot be checkpointed; remember whether the
        # defaults were overridden so restore() can demand the same objects
        # back instead of silently diverging (DESIGN.md Section 6).
        if extractor is not None:
            self.extractor = extractor
        elif tokenizer is not None:
            self.extractor = KeywordExtractor(tokenizer=tokenizer)
        else:
            self.extractor = make_extractor(
                self.config.extractor, self.config.extractor_options
            )
        self._custom_extractor = not is_reconstructible(self.extractor)
        self._custom_noun_tagger = noun_tagger is not None
        self.noun_tagger = (
            noun_tagger if noun_tagger is not None else NounTagger()
        )
        self.maintainer = ClusterMaintainer()
        if self.config.sharded and (oracle_akg or self.config.oracle_akg):
            raise ConfigError(
                "oracle_akg is a serial verification baseline; it cannot "
                "run on the sharded front-end (workers/shard_count)"
            )
        if self.config.batched and (oracle_akg or self.config.oracle_akg):
            raise ConfigError(
                "oracle_akg runs the reference components by definition; "
                "it cannot run on the batched backend"
            )
        if overlap:
            if not self.config.sharded:
                raise ConfigError(
                    "overlap pipelines the sharded front-end's scatter "
                    "against the previous quantum's tail; a serial session "
                    "(workers=1, no shard_count) has no scatter to overlap"
                )
            if profile:
                raise ConfigError(
                    "overlap runs each quantum's tail on a background "
                    "thread and cProfile instruments a single thread; "
                    "use profile or overlap, not both"
                )
            if self.config.track_ckg_stats:
                raise ConfigError(
                    "overlap would race the CKG-stats tracker (the next "
                    "quantum's extract stage updates it while the previous "
                    "tail still reads it); disable track_ckg_stats to "
                    "pipeline"
                )
        if self.config.sharded:
            from repro.parallel import ShardedAkgFrontend

            self.builder = ShardedAkgFrontend(
                self.config, self.maintainer, backend=worker_backend
            )
        elif self.config.batched:
            self.builder = BatchedAkgBuilder(self.config, self.maintainer)
        else:
            self.builder = AkgBuilder(
                self.config,
                self.maintainer,
                oracle=oracle_akg or self.config.oracle_akg,
            )
        self.ranker = IncrementalRanker(
            self.maintainer.registry,
            self.maintainer.graph,
            self.builder.node_weights,
            min_cluster_size=self.config.min_cluster_size,
            oracle=oracle_ranking or self.config.oracle_ranking,
        )
        self.tracker = EventTracker()
        self.batcher = QuantumBatcher(self.config.quantum_size)
        self.ckg_stats = (
            CkgStatsTracker(self.config.window_quanta)
            if self.config.track_ckg_stats
            else None
        )
        self._rank_floor = self.config.rank_threshold_scale * minimum_rank(
            self.config.high_state_threshold, self.config.ec_threshold
        )
        self.report_index = ThresholdIndex(self._passes_filters)
        stages = build_stages(
            self.extractor,
            self.maintainer,
            self.builder,
            self.ranker,
            self.tracker,
            self.report_index,
            self.config.max_tokens_per_message,
            self.ckg_stats,
        )
        if self.config.sharded:
            from repro.parallel import (
                BatchedShardedExtractStage,
                ShardedAkgUpdateStage,
                ShardedExtractStage,
            )

            stages[1] = ShardedAkgUpdateStage(self.builder, self.maintainer)
            # Parallel extraction requires a registry-reconstructible
            # extractor (worker processes rebuild it from its spec) and no
            # CKG-stats tracker (its actor->entities view is not
            # materialised worker-side); otherwise the serial stage stays,
            # losing only the extract fan-out.  The batched backend extracts
            # parent-side instead (interned hash-column routing, no worker
            # round trip), which also serves custom extractors.
            if self.config.batched and self.ckg_stats is None:
                stages[0] = BatchedShardedExtractStage(
                    self.builder,
                    self.extractor,
                    self.config.max_tokens_per_message,
                )
            elif (
                not self._custom_extractor
                and self.ckg_stats is None
                and self.builder.pool.workers > 1
                and self.builder.pool.can_extract
            ):
                stages[0] = ShardedExtractStage(
                    self.builder,
                    self.config.max_tokens_per_message,
                    extractor_spec(self.extractor),
                )
        elif self.config.batched and self.ckg_stats is None:
            from repro.pipeline.batched import (
                BatchedAkgUpdateStage,
                BatchedExtractStage,
            )

            # Serial batched hot path: columns flow from the extract stage
            # straight into the builder's window indexes, sharing its
            # interner tables.  With CKG stats enabled the reference stages
            # stay (the tracker consumes the actor->entities view) and the
            # batched builder serves the mapping contract instead.
            stages[0] = BatchedExtractStage(
                self.extractor,
                self.config.max_tokens_per_message,
                self.builder.idsets.ents,
                self.builder.idsets.acts,
            )
            stages[1] = BatchedAkgUpdateStage(self.builder, self.maintainer)
        self.pipeline = Pipeline(stages)
        self._overlap = overlap
        self._overlap_active = False
        self._profiler = cProfile.Profile() if profile else None
        self._quantum = -1
        self.total_messages = 0
        self.total_seconds = 0.0
        self.total_timings = StageTimings()
        self._subscriptions: List[Subscription] = []
        self._notified: Dict[int, _Notified] = {}
        self._delta_writer = None
        self._closed = False

    # ------------------------------------------------------------- access

    @property
    def graph(self):
        """The live AKG (read-only by convention)."""
        return self.maintainer.graph

    @property
    def registry(self):
        """The live SCP cluster registry (read-only by convention)."""
        return self.maintainer.registry

    @property
    def current_quantum(self) -> int:
        """Index of the last completed quantum (-1 before the first)."""
        return self._quantum

    @property
    def tokenizer(self):
        """The keyword extractor's text tokenizer (legacy accessor; None
        for non-text extractors, which never tokenize)."""
        return getattr(self.extractor, "tokenizer", None)

    def _passes_filters(self, event: ReportedEvent) -> bool:
        """Section 7.2.2 report-time filters: rank floor and noun check.

        The noun filter is a *textual* heuristic ("a real-world event
        mentions at least one noun") — it only applies when the extractor
        produces natural-language entities; product ids or tagged field
        values have no part of speech to test.
        """
        if event.rank < self._rank_floor:
            return False
        if (
            self.config.require_noun
            and self.extractor.textual
            and not self.noun_tagger.has_noun(event.keywords)
        ):
            return False
        return True

    # ---------------------------------------------------------- ingestion

    def ingest(self, message: Message) -> Optional[QuantumReport]:
        """Feed one message; returns a report when a quantum completes."""
        quantum = self.batcher.push(message)
        if quantum is None:
            return None
        return self.process_quantum(quantum)

    def ingest_many(
        self, messages: Iterable[Message], *, flush: bool = False
    ) -> Iterator[QuantumReport]:
        """Feed a message iterable, yielding one report per completed quantum.

        Unlike the legacy ``process_stream``, a trailing partial quantum is
        *kept buffered* by default so the session (and its checkpoints)
        composes across calls; pass ``flush=True`` — or call :meth:`flush` —
        to force-process the remainder as a final short quantum.

        With ``overlap=True`` the quanta are double-buffered (see
        :meth:`_ingest_many_pipelined`): while the caller consumes a
        yielded report, the *next* quantum's tail may still be running on
        the background thread — sink callbacks fire on that thread, and
        the session's live structures (graph, registry, ranker) should be
        treated as read-only-between-iterations only after the iterator is
        exhausted or closed.  Reports and sink events themselves are
        bit-identical to the unpipelined path.
        """
        stream = iter(messages)
        if self._overlap:
            yield from self._ingest_many_pipelined(stream)
        else:
            while True:
                quantum = self.batcher.fill(stream)
                if quantum is None:
                    break
                yield self.process_quantum(quantum)
        if flush:
            tail = self.flush()
            if tail is not None:
                yield tail

    def flush(self) -> Optional[QuantumReport]:
        """Process any buffered partial quantum now (end-of-stream)."""
        tail = self.batcher.flush()
        if not tail:
            return None
        return self.process_quantum(tail)

    def process_quantum(self, messages: Sequence[Message]) -> QuantumReport:
        """Advance the window by one full quantum of messages."""
        if self._closed:
            raise PipelineError(
                "session is closed; open a new session (or resume from a "
                "checkpoint) to keep ingesting"
            )
        if self._overlap_active:
            raise PipelineError(
                "a pipelined ingest_many iteration is in progress; exhaust "
                "or close that iterator before ingesting through another "
                "path"
            )
        start = time.perf_counter()
        self._quantum += 1
        ctx = QuantumContext(quantum=self._quantum, messages=messages)
        if self._profiler is not None:
            self._profiler.enable()
            try:
                self.pipeline.run(ctx)
            finally:
                self._profiler.disable()
        else:
            self.pipeline.run(ctx)
        return self._finalize_report(ctx, start)

    def _finalize_report(self, ctx: QuantumContext, start: float) -> QuantumReport:
        """Fill and publish the report of a fully-run quantum context.

        Shared by the serial path and the pipelined tail; everything here
        (totals, sink dispatch, delta-log append) belongs to the quantum's
        tail and must run before the *next* quantum's tail starts.
        """
        report = ctx.report
        report.messages_processed = len(ctx.messages)
        report.timings = ctx.timings
        report.changes = len(ctx.batch)
        report.dirty_clusters = len(ctx.dirty)
        report.ranked_clusters = self.ranker.stats.ranked
        report.rank_cache_hits = self.ranker.stats.cache_hits
        if self.ckg_stats is not None:
            report.ckg_nodes = self.ckg_stats.ckg_nodes
            report.ckg_edges = self.ckg_stats.ckg_edges
        report.elapsed_seconds = time.perf_counter() - start
        self.total_messages += len(ctx.messages)
        self.total_seconds += report.elapsed_seconds
        self.total_timings.add(ctx.timings)
        self._dispatch(report)
        if self._delta_writer is not None:
            # One framed edit script per completed quantum: the durable
            # stream a FollowerSession tails to stay warm (DESIGN.md
            # Section 10).  An append failure propagates — a leader whose
            # durability channel broke must not keep running silently.
            self._delta_writer.append(self._state_tree())
        return report

    # ------------------------------------------------- pipelined ingestion

    def _run_head(self, messages: Sequence[Message]) -> QuantumContext:
        """Front half of one quantum: extract + phase-one scatter.

        Runs on the calling thread.  Touches no parent graph state — the
        extract stage and the front-end's :meth:`~repro.parallel.frontend
        .ShardedAkgFrontend.scatter` read only the quantum's messages and
        the worker pool — so it may overlap the *previous* quantum's tail.
        """
        if self._closed:
            raise PipelineError(
                "session is closed; open a new session (or resume from a "
                "checkpoint) to keep ingesting"
            )
        self._quantum += 1
        ctx = QuantumContext(quantum=self._quantum, messages=messages)
        stages = self.pipeline.stages
        stages[0].run(ctx)
        stages[1].scatter(ctx)
        return ctx

    def _run_tail(self, ctx, start, exchange_done):
        """Back half of one quantum: exchange merge, maintain, rank, report.

        Runs on the pipeline thread.  ``exchange_done`` is set the moment
        the last worker round trip of this quantum finishes — the barrier
        after which the next quantum may scatter — and is guaranteed set on
        exit even when the tail fails, so the driver never deadlocks on a
        dead tail.  Returns ``(report, tail_end_perf_counter)``.
        """
        try:
            self.pipeline.stages[1].complete(
                ctx, exchange_done=exchange_done.set
            )
            for stage in self.pipeline.stages[2:]:
                stage.run(ctx)
            report = self._finalize_report(ctx, start)
            return report, time.perf_counter()
        finally:
            exchange_done.set()

    def _ingest_many_pipelined(
        self, stream: Iterator[Message]
    ) -> Iterator[QuantumReport]:
        """Double-buffered quantum driver (``overlap=True``).

        Quantum *q*'s tail runs on a single background thread while the
        calling thread extracts and scatters quantum *q+1* — the only
        ordering constraint is that *q*'s phase-two exchange finishes
        before *q+1*'s scatter touches the workers, enforced by the
        ``exchange_done`` barrier.  Tails never overlap each other
        (single-thread executor), so every graph mutation, sink event and
        report is produced in exactly the serial order — the pipelining is
        execution-only.

        The hidden wall time is recorded per quantum as
        ``report.timings.overlap_saved``: the span of quantum *q+1*'s head
        that ran while *q*'s tail was still active.

        If the caller abandons the iterator after a head already scattered,
        the orphaned quantum is completed inline (its report dropped) so
        the session still lands on a quantum boundary.
        """
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-tail"
        )
        inflight = None  # running tail's future
        scattered = None  # (ctx, head_start): head done, tail not launched
        failed = False
        self._overlap_active = True
        try:
            while True:
                quantum = self.batcher.fill(stream)
                if quantum is None:
                    break
                head_start = time.perf_counter()
                ctx = self._run_head(quantum)
                scattered = (ctx, head_start)
                head_end = time.perf_counter()
                pending_report = None
                if inflight is not None:
                    report, tail_end = inflight.result()
                    inflight = None
                    saved = max(0.0, min(tail_end, head_end) - head_start)
                    report.timings.overlap_saved = saved
                    self.total_timings.overlap_saved += saved
                    pending_report = report
                exchange_done = threading.Event()
                inflight = executor.submit(
                    self._run_tail, ctx, head_start, exchange_done
                )
                scattered = None
                exchange_done.wait()
                if inflight.done() and inflight.exception() is not None:
                    raise inflight.exception()
                if pending_report is not None:
                    yield pending_report
            if inflight is not None:
                report, _ = inflight.result()
                inflight = None
                yield report
        except GeneratorExit:
            raise
        except BaseException:
            failed = True
            raise
        finally:
            try:
                if inflight is not None:
                    try:
                        inflight.result()
                    except BaseException:
                        if not failed:
                            raise
                if scattered is not None and not failed:
                    # The head already consumed these messages and slid the
                    # worker windows; finish the quantum inline so the
                    # session lands on a quantum boundary.  Only reachable
                    # when the caller abandons the iterator mid-stream.
                    orphan_ctx, orphan_start = scattered
                    self._run_tail(
                        orphan_ctx, orphan_start, threading.Event()
                    )
            finally:
                self._overlap_active = False
                executor.shutdown(wait=True)

    # -------------------------------------------------------- subscription

    def subscribe(
        self,
        sink: Union[Sink, callable],
        kinds: Optional[Iterable[EventKind]] = None,
        top_k: Optional[int] = None,
    ) -> Subscription:
        """Attach a sink for lifecycle notifications.

        ``sink`` may be a :class:`~repro.api.sinks.Sink` or a plain callable
        (wrapped in a :class:`~repro.api.sinks.CallbackSink`).  ``kinds``
        defaults to all four transitions.  ``top_k`` scopes the subscription
        to the report index's top-k view: events are announced (as
        ``EMERGING``) when they first enter the view — including by climbing
        into it — updated while inside it, and closed by their ``DYING``
        (see :class:`Subscription`).
        """
        if not hasattr(sink, "emit"):
            sink = CallbackSink(sink)
        selected = (
            frozenset(EventKind) if kinds is None else frozenset(kinds)
        )
        subscription = Subscription(sink, selected, top_k, self)
        self._subscriptions.append(subscription)
        return subscription

    def _dispatch(self, report: QuantumReport) -> None:
        """Diff the report against the notified state; deliver transitions.

        Runs unconditionally (not only when sinks are attached) so the
        notified state — which is checkpointed — does not depend on who is
        listening.
        """
        notifications: List[SessionEvent] = []
        reported_ids: Set[int] = set()
        for event in report.reported:
            reported_ids.add(event.event_id)
            prev = self._notified.get(event.event_id)
            if prev is None:
                notifications.append(
                    SessionEvent(
                        EventKind.EMERGING,
                        report.quantum,
                        event.event_id,
                        event.keywords,
                        event.rank,
                        event.size,
                    )
                )
            else:
                if event.keywords - prev.keywords:
                    notifications.append(
                        SessionEvent(
                            EventKind.GROWING,
                            report.quantum,
                            event.event_id,
                            event.keywords,
                            event.rank,
                            event.size,
                            previous_rank=prev.rank,
                            previous_size=prev.size,
                        )
                    )
                if event.rank != prev.rank:
                    notifications.append(
                        SessionEvent(
                            EventKind.RANK_CHANGED,
                            report.quantum,
                            event.event_id,
                            event.keywords,
                            event.rank,
                            event.size,
                            previous_rank=prev.rank,
                            previous_size=prev.size,
                        )
                    )
            self._notified[event.event_id] = _Notified(
                event.rank, event.size, event.keywords
            )
        for event_id in sorted(set(self._notified) - reported_ids):
            prev = self._notified.pop(event_id)
            notifications.append(
                SessionEvent(
                    EventKind.DYING,
                    report.quantum,
                    event_id,
                    prev.keywords,
                    prev.rank,
                    prev.size,
                )
            )
        if not notifications or not self._subscriptions:
            return
        top_ids: Dict[int, Set[int]] = {}
        for subscription in list(self._subscriptions):
            if subscription.top_k is None:
                for note in notifications:
                    if note.kind in subscription.kinds:
                        subscription.sink.emit(note)
                continue
            ids = top_ids.get(subscription.top_k)
            if ids is None:
                ids = {
                    e.event_id
                    for e in self.report_index.top(subscription.top_k)
                }
                top_ids[subscription.top_k] = ids
            announced = subscription._announced
            # Announce every event newly inside the view, *whatever* moved
            # it in — its own emergence, climbing past a faller, or another
            # event's death vacating a slot.  (Sound to do only on
            # notification-bearing quanta: an empty batch cannot change the
            # reported list, hence cannot change the view.)
            for cid in sorted(ids - announced):
                entry = self.report_index.entries()[cid]
                announced.add(cid)
                if EventKind.EMERGING in subscription.kinds:
                    subscription.sink.emit(
                        SessionEvent(
                            EventKind.EMERGING,
                            report.quantum,
                            cid,
                            entry.keywords,
                            entry.rank,
                            entry.size,
                        )
                    )
            for note in notifications:
                if note.kind is EventKind.DYING:
                    if note.event_id in announced:
                        announced.discard(note.event_id)
                        if EventKind.DYING in subscription.kinds:
                            subscription.sink.emit(note)
                    continue
                if (
                    note.event_id in ids
                    and note.kind is not EventKind.EMERGING
                    and note.kind in subscription.kinds
                ):
                    subscription.sink.emit(note)

    # ------------------------------------------------------------ summary

    def throughput(self) -> float:
        """Messages processed per second of session CPU time so far."""
        if self.total_seconds == 0.0:
            return 0.0
        return self.total_messages / self.total_seconds

    def profile_stats(self, top: int = 20) -> str:
        """Formatted cProfile data for the pipeline work so far.

        Requires the session to have been opened with ``profile=True``;
        returns the ``top`` hottest functions by cumulative time —
        ``detect --profile`` prints this after the run, and perf PRs should
        start from it rather than guessing at the hot path.
        """
        if self._profiler is None:
            raise ConfigError(
                "profiling is off; open the session with profile=True "
                "(detect --profile) to collect pipeline profiles"
            )
        out = io.StringIO()
        stats = pstats.Stats(self._profiler, stream=out)
        stats.sort_stats("cumulative").print_stats(top)
        return out.getvalue()

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release session resources (worker pool, delta log, sinks).

        Idempotent and safe mid-quantum: the first call closes the worker
        pool, the delta-log writer, and every subscribed sink exposing a
        ``close()`` method **exactly once**; subsequent calls are no-ops.
        A buffered partial quantum is *never* force-processed — it stays
        readable through :meth:`snapshot` (which remains callable on a
        closed session) and is otherwise discarded with the object, so
        teardown is deterministic regardless of where in a quantum the
        caller stopped.  Further ``ingest``/``process_quantum`` calls
        raise :class:`~repro.errors.PipelineError`.

        A delta log's appends are fsynced as they happen, so close only
        releases the handle — it never loses records.
        """
        if self._closed:
            return
        self._closed = True
        close = getattr(self.builder, "close", None)
        if close is not None:
            close()
        if self._delta_writer is not None:
            self._delta_writer.close()
        for subscription in list(self._subscriptions):
            sink_close = getattr(subscription.sink, "close", None)
            if sink_close is not None:
                sink_close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (ingestion refused afterwards)."""
        return self._closed

    def __enter__(self) -> "DetectorSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def events(self, include_spurious: bool = True) -> List[EventRecord]:
        """All events observed so far (optionally post-hoc filtered)."""
        if include_spurious:
            return self.tracker.all_events()
        return self.tracker.real_events()

    # --------------------------------------------------------- checkpoints

    def snapshot(self, path) -> None:
        """Serialize the full session state to ``path``.

        Callable between any two ``ingest`` calls — a buffered partial
        quantum is included.  The ranker cache and report index are *not*
        serialized: both are pure functions of the serialized state and are
        recomputed bit-identically on restore (DESIGN.md Section 6).

        Execution-only config fields (``workers``/``shard_count``) are
        stripped: results do not depend on them, the sharded front-end
        writes its window state in the merged serial layout, and so the
        same stream position produces the same checkpoint bytes under any
        worker count — and resumes under any other (pass ``workers=`` to
        ``open_session``).
        """
        if self._overlap_active:
            raise CheckpointError(
                "cannot snapshot during a pipelined ingest_many iteration: "
                "the next quantum's scatter has already advanced the "
                "worker windows past the merged state; exhaust or close "
                "the iterator first"
            )
        save_checkpoint(path, self._state_tree())

    def enable_delta_log(self, path, *, compact_ratio: float = 4.0) -> None:
        """Start incremental checkpointing into the directory ``path``.

        Writes a base snapshot of the current state now, then appends one
        framed edit script per completed quantum (compacting — fresh base,
        truncated log — once the log passes ``compact_ratio`` times the
        base size).  The directory loads like any checkpoint
        (``open_session(resume=path)``) and is what a
        :class:`~repro.api.follower.FollowerSession` tails to stay warm.
        An existing delta checkpoint directory is attached with a fresh
        generation (new base from this session's state), which is how a
        promoted follower chains its own standby.
        """
        from repro.api.deltalog import DeltaCheckpointWriter

        if self._delta_writer is not None:
            raise CheckpointError(
                "a delta log is already enabled for this session"
            )
        if self._overlap:
            raise CheckpointError(
                "a pipelined (overlap=True) session cannot keep a delta "
                "log: the per-quantum append would serialize worker "
                "windows the next quantum's scatter has already advanced; "
                "open the session without overlap to record one"
            )
        writer = DeltaCheckpointWriter(path, compact_ratio=compact_ratio)
        writer.start(self._state_tree())
        self._delta_writer = writer

    @property
    def delta_writer(self):
        """The active delta-log writer, or None (read-only by convention)."""
        return self._delta_writer

    def _state_tree(self) -> dict:
        """Compose the full serializable session state (DESIGN.md S6/S10)."""
        try:
            maintainer_state = self.maintainer.to_state()
        except GraphError as exc:
            raise CheckpointError(str(exc)) from exc
        config_dict = {
            key: value
            for key, value in self.config.to_dict().items()
            if key not in DetectorConfig.EXECUTION_FIELDS
        }
        state = {
            "config": config_dict,
            "oracle_akg": self.builder.oracle,
            "oracle_ranking": self.ranker.oracle,
            # Extractor identity: the registry spec that rebuilds the
            # ingestion stage on resume (None when function-valued state
            # makes the extractor non-reconstructible — the caller must
            # then pass the same object back, like custom noun taggers).
            "extractor": (
                None
                if self._custom_extractor
                else extractor_spec(self.extractor)
            ),
            "custom_extractor": self._custom_extractor,
            "custom_noun_tagger": self._custom_noun_tagger,
            "quantum": self._quantum,
            "total_messages": self.total_messages,
            "total_seconds": self.total_seconds,
            "timings": self.total_timings.as_dict(),
            "pending": [
                message_to_record(m) for m in self.batcher.pending_messages()
            ],
            "maintainer": maintainer_state,
            "builder": self.builder.to_state(),
            "tracker": self.tracker.to_state(),
            "ckg_stats": (
                self.ckg_stats.to_state() if self.ckg_stats is not None else None
            ),
            "notified": [
                [cid, note.rank, note.size, sorted(note.keywords)]
                for cid, note in sorted(self._notified.items())
            ],
        }
        return state

    @classmethod
    def restore(
        cls,
        path,
        *,
        noun_tagger: Optional[NounTagger] = None,
        tokenizer=None,
        extractor: Optional[EntityExtractor] = None,
        workers: Optional[Union[int, str]] = None,
        shard_count: Optional[int] = None,
        worker_backend: Optional[str] = None,
        backend: Optional[str] = None,
        overlap: bool = False,
        profile: bool = False,
    ) -> "DetectorSession":
        """Reconstruct a session from a :meth:`snapshot` file.

        Registered extractors are rebuilt by value from the spec the
        checkpoint records.  ``noun_tagger``, ``tokenizer`` and custom
        ``extractor`` instances are function-valued state the checkpoint
        cannot carry: it records whether the original session overrode the
        defaults, and restore refuses a mismatch — resuming with a
        different tagger or extractor would silently break the
        bit-identical guarantee.  Pass the same objects the original
        session used.

        ``workers``/``shard_count``/``worker_backend``/``backend`` choose
        the *resumed* session's execution mode — checkpoints are
        execution-agnostic, so a stream snapshotted serially can resume
        under 4 workers, one snapshotted under the reference hot path can
        resume batched, and vice versa, continuing bit-identically either
        way.
        """
        return cls._from_state_tree(
            load_checkpoint(path),
            noun_tagger=noun_tagger,
            tokenizer=tokenizer,
            extractor=extractor,
            workers=workers,
            shard_count=shard_count,
            worker_backend=worker_backend,
            backend=backend,
            overlap=overlap,
            profile=profile,
        )

    @classmethod
    def _from_state_tree(
        cls,
        state: dict,
        *,
        noun_tagger: Optional[NounTagger] = None,
        tokenizer=None,
        extractor: Optional[EntityExtractor] = None,
        workers: Optional[Union[int, str]] = None,
        shard_count: Optional[int] = None,
        worker_backend: Optional[str] = None,
        backend: Optional[str] = None,
        overlap: bool = False,
        profile: bool = False,
    ) -> "DetectorSession":
        """Materialize a live session from a decoded state tree.

        The common trunk under :meth:`restore` and
        :meth:`~repro.api.follower.FollowerSession.promote`: the tree may
        come from a monolithic snapshot, a replayed delta log, or a warm
        follower — the execution-agnostic resume guarantees apply
        identically.  The caller yields ownership of ``state``; layers may
        keep references into it.
        """
        config = DetectorConfig.from_dict(state["config"])
        overrides = {}
        if workers is not None:
            overrides["workers"] = workers
        if shard_count is not None:
            overrides["shard_count"] = shard_count
        if backend is not None:
            overrides["backend"] = backend
        if overrides:
            config = config.with_overrides(**overrides)
        if state["custom_noun_tagger"] and noun_tagger is None:
            raise CheckpointError(
                "checkpoint was taken with a custom noun_tagger; pass the "
                "same one to open_session(resume=..., noun_tagger=...) or "
                "the resumed stream would diverge"
            )
        if not state["custom_noun_tagger"] and noun_tagger is not None:
            raise CheckpointError(
                "checkpoint was taken with the default noun_tagger; "
                "resuming with a custom one would diverge"
            )
        if state["custom_extractor"]:
            if extractor is None and tokenizer is None:
                raise CheckpointError(
                    "checkpoint was taken with a custom extractor; pass "
                    "the same one to open_session(resume=..., "
                    "extractor=...) (or tokenizer=...) or the resumed "
                    "stream would diverge"
                )
            if extractor is not None and is_reconstructible(extractor):
                # A registered extractor cannot be the custom one the
                # checkpoint demands back — accepting it would silently
                # diverge (and the next snapshot would launder the stream
                # into a 'registered' checkpoint).
                raise CheckpointError(
                    "checkpoint was taken with a custom extractor; the "
                    f"registered {extractor.name!r} extractor passed to "
                    "open_session(resume=...) cannot be it, and the "
                    "resumed stream would diverge"
                )
        else:
            # Rebuild from the recorded spec: authoritative even when it
            # differs from the config fields (a session opened with an
            # explicit registered extractor instance snapshots that spec).
            # A caller re-passing an equivalent registered instance is
            # fine; anything whose spec differs would diverge.
            spec = state["extractor"]
            if tokenizer is not None:
                raise CheckpointError(
                    f"checkpoint was taken with the registered "
                    f"{spec['name']!r} extractor; resuming with a custom "
                    f"tokenizer would diverge"
                )
            if extractor is not None and (
                not is_reconstructible(extractor)
                or extractor_spec(extractor) != spec
            ):
                raise CheckpointError(
                    f"checkpoint was taken with the registered "
                    f"{spec['name']!r} extractor (options "
                    f"{spec['options']!r}); the extractor passed to "
                    f"open_session(resume=...) does not match and the "
                    f"resumed stream would diverge"
                )
            if extractor is None:
                extractor = make_extractor(spec["name"], spec["options"])
        session = cls(
            config,
            noun_tagger=noun_tagger,
            tokenizer=tokenizer,
            extractor=extractor,
            oracle_ranking=state["oracle_ranking"],
            oracle_akg=state["oracle_akg"],
            worker_backend=worker_backend,
            overlap=overlap,
            profile=profile,
        )
        session.maintainer.from_state(state["maintainer"])
        session.builder.from_state(state["builder"])
        session.tracker.from_state(state["tracker"])
        if session.ckg_stats is not None and state["ckg_stats"] is not None:
            session.ckg_stats.from_state(state["ckg_stats"])
        session.batcher.load_pending(
            message_from_record(record) for record in state["pending"]
        )
        session._quantum = state["quantum"]
        session.total_messages = state["total_messages"]
        session.total_seconds = state["total_seconds"]
        session.total_timings = StageTimings(**state["timings"])
        session._notified = {
            cid: _Notified(rank, size, frozenset(keywords))
            for cid, rank, size, keywords in state["notified"]
        }
        # Derived state: recompute the rank cache from the restored graph
        # and window state, then re-seed the report index from it.  Both are
        # bit-identical to their pre-snapshot values because ranks and
        # filter verdicts are pure functions of the restored inputs.
        ranked = session.ranker.rebuild_cache()
        report_stage = session.pipeline.stage("report")
        assert isinstance(report_stage, ReportStage)
        report_stage.seed(ranked)
        return session


def open_session(
    config: Optional[DetectorConfig] = None,
    *,
    resume=None,
    noun_tagger: Optional[NounTagger] = None,
    tokenizer=None,
    extractor: Optional[EntityExtractor] = None,
    oracle_ranking: bool = False,
    oracle_akg: bool = False,
    workers: Optional[Union[int, str]] = None,
    shard_count: Optional[int] = None,
    worker_backend: Optional[str] = None,
    backend: Optional[str] = None,
    overlap: bool = False,
    profile: bool = False,
    delta_log=None,
    delta_compact_ratio: float = 4.0,
) -> DetectorSession:
    """Open a detector session — fresh, or resumed from a checkpoint.

    With ``resume=path`` the session is reconstructed from the checkpoint
    (including its configuration; passing ``config`` too is an error to
    avoid silently ignoring one of them).  Otherwise a fresh session is
    built from ``config`` (Table 2 nominal when omitted).

    The ingestion extractor is selected by ``config.extractor`` (see
    :mod:`repro.extract`); ``extractor`` passes an explicit instance, and
    ``tokenizer`` is the legacy shorthand for the keyword extractor with a
    custom text tokenizer.  On resume, registered extractors are rebuilt
    from the checkpoint; custom ones must be passed back in.

    ``workers``/``shard_count``/``backend`` select the execution mode; on a
    fresh session they override the config fields of the same name, on
    resume they choose how the execution-agnostic checkpoint continues
    (results are bit-identical for any values, DESIGN.md Sections 7 and 9).
    ``workers`` also accepts the remote form ``"host:port,host:port"`` —
    each endpoint a running ``repro shard-worker`` daemon — which selects
    the socket transport (DESIGN.md Section 12).  ``overlap=True``
    double-buffers ``ingest_many`` on the sharded front-end (quantum
    *q+1*'s scatter under quantum *q*'s tail) — also execution only.
    ``profile=True`` collects a cProfile of the stage pipeline
    (``DetectorSession.profile_stats``).

    ``delta_log=path`` enables incremental checkpointing: a base snapshot
    now, then one durable edit-script record per completed quantum into
    the directory ``path`` (compacted past ``delta_compact_ratio`` times
    the base size) — the stream a warm-standby
    :class:`~repro.api.follower.FollowerSession` tails (DESIGN.md
    Section 10).  ``resume`` accepts a delta-checkpoint directory as well
    as a monolithic snapshot file.
    """
    if resume is not None:
        if config is not None:
            raise CheckpointError(
                "pass either config or resume, not both: a resumed session "
                "runs under its checkpoint's configuration"
            )
        if oracle_ranking or oracle_akg:
            raise CheckpointError(
                "oracle modes are part of the checkpoint: a resumed session "
                "keeps the modes it was snapshotted with, so the oracle_* "
                "arguments cannot be combined with resume"
            )
        session = DetectorSession.restore(
            resume,
            noun_tagger=noun_tagger,
            tokenizer=tokenizer,
            extractor=extractor,
            workers=workers,
            shard_count=shard_count,
            worker_backend=worker_backend,
            backend=backend,
            overlap=overlap,
            profile=profile,
        )
        if delta_log is not None:
            session.enable_delta_log(
                delta_log, compact_ratio=delta_compact_ratio
            )
        return session
    if workers is not None or shard_count is not None or backend is not None:
        base = config if config is not None else DetectorConfig()
        overrides = {}
        if workers is not None:
            overrides["workers"] = workers
        if shard_count is not None:
            overrides["shard_count"] = shard_count
        if backend is not None:
            overrides["backend"] = backend
        config = base.with_overrides(**overrides)
    session = DetectorSession(
        config,
        noun_tagger=noun_tagger,
        tokenizer=tokenizer,
        extractor=extractor,
        oracle_ranking=oracle_ranking,
        oracle_akg=oracle_akg,
        worker_backend=worker_backend,
        overlap=overlap,
        profile=profile,
    )
    if delta_log is not None:
        session.enable_delta_log(delta_log, compact_ratio=delta_compact_ratio)
    return session


__all__ = ["DetectorSession", "Subscription", "open_session"]
