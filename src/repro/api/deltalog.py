"""Incremental (delta) checkpoints: base snapshot + per-quantum edit log.

A *delta checkpoint* is a directory::

    <path>/
        MANIFEST.json      {"format": ..., "version": 4, "generation": g,
                            "base": "base-<g>.ckpt", "log": "deltas-<g>.log",
                            "base_quantum": q}
        base-<g>.ckpt      ordinary monolithic checkpoint (v3 reader format)
        deltas-<g>.log     framed, length-prefixed per-quantum edit records

The leader writes the base once, then appends one *edit script* per
completed quantum: a structural diff of the session's serialized state tree
against the previous quantum's tree.  Edit scripts are churn-proportional —
dict entries are set/deleted per key, sets add/remove members, lists are
spliced (with nested patches for elements that changed in place) — so a
quantum's record costs bytes proportional to what the quantum *touched*,
not to the window content the way a full snapshot does.  Diffing the
serialized tree (rather than replaying the pipeline's ``ChangeBatch`` /
``SlideDelta`` layer deltas) keeps the consumer pipeline-free: a follower
applies records with :func:`patch_tree` alone, no engine logic, and the
guarantee ``patch(a, diff(a, b)) == b`` makes replay *provably*
bit-identical — it holds for every stateful layer at once, including ones
(timings, pending buffer, notified table) that emit no layer delta.

Log framing is crash-oriented: each record is ``>II`` (payload length,
CRC32) followed by the JSON payload, the file opens with a 4-byte magic,
and every append fsyncs the file and its directory.  A torn tail (short
header, short payload, or CRC mismatch on the final frame) is *expected*
after a crash and the reader silently loads the last consistent prefix; a
quantum-discontinuous record — which a sequential appender cannot produce
by crashing — raises :class:`~repro.errors.CheckpointError` instead of
returning silently wrong state.

Compaction bounds replay cost: once the log grows past ``compact_ratio``
times the base size, the writer rewrites a fresh base from the current
state, starts an empty log, and atomically flips ``MANIFEST.json`` to the
new generation (old-generation files are then unlinked; a follower holding
an open descriptor on POSIX keeps reading safely and switches generations
at its next manifest poll).

The transport seam (:class:`DeltaTransport` / :class:`FileTailTransport`)
is what a future socket-based replication channel plugs into: a follower
only ever calls ``manifest()`` / ``load_base()`` / ``read_records()``.
"""

from __future__ import annotations

import copy
import difflib
import json
import os
import struct
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any, List, Optional, Protocol, Tuple, runtime_checkable

from repro.api.checkpoint import (
    decode_state,
    encode_state,
    fsync_dir,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import CheckpointError

DELTA_FORMAT = "repro-session-delta-checkpoint"
DELTA_VERSION = 4
"""Version 4 of the checkpoint lineage: versions 1–3 are monolithic
snapshot layouts (:mod:`repro.api.checkpoint`); version 4 is this
base-plus-delta-log directory format.  The base file inside a delta
checkpoint is itself a version-3 monolithic snapshot, so the v4 reader is
a strict layer on top of the v3 reader."""

MANIFEST_NAME = "MANIFEST.json"
_LOG_MAGIC = b"RDLG"
_FRAME_HEADER = struct.Struct(">II")
_MAX_FRAME = 1 << 31

_SCALARS = (bool, int, float, str)


# =====================================================================
# Structural diff/patch over decoded state trees
# =====================================================================


def _same(a: Any, b: Any) -> bool:
    """Strict deep equality: ``==`` plus scalar *identity of representation*.

    Plain ``==`` would call ``1 == 1.0`` and ``0.0 == -0.0`` equal, but the
    checkpoint codec serializes them differently — skipping such a "change"
    would silently break the byte-identity of replayed state.  Floats
    compare by shortest-roundtrip repr, and type switches always differ.
    """
    if a is b:
        return True
    ta = type(a)
    if ta is not type(b):
        return False
    if ta is float:
        return repr(a) == repr(b)
    if ta is list or ta is tuple:
        return len(a) == len(b) and all(map(_same, a, b))
    if ta is dict:
        if len(a) != len(b):
            return False
        for key, value in a.items():
            if key not in b or not _same(value, b[key]):
                return False
        return True
    return a == b


def _canon_key(value: Any) -> Any:
    """Hashable, deterministic alignment key for sequence diffing."""
    if value is None or isinstance(value, _SCALARS):
        return (type(value).__name__, repr(value))
    return json.dumps(
        encode_state(value), sort_keys=True, separators=(",", ":")
    )


def _sort_key(value: Any) -> str:
    return json.dumps(
        encode_state(value), sort_keys=True, separators=(",", ":")
    )


def diff_trees(a: Any, b: Any, *, memoize: bool = False) -> Optional[list]:
    """Edit script turning state tree ``a`` into ``b``; None when identical.

    The script is itself a state-tree-safe structure (nested lists mixing
    tag strings with literal state values), so it rides the checkpoint
    codec unchanged.  Guarantee: ``patch_tree(a, diff_trees(a, b))``
    reproduces ``b`` exactly, including float representations and
    container types.

    ``memoize=True`` selects the churn-proportional cost profile for huge
    mostly-unchanged states: replacement capping uses a budget-limited
    streaming sizer (identical decisions, but an unchanged megabyte is
    never serialized just to learn it is big), and sequence alignment uses
    coarse signatures repaired by a per-element equality pass (scripts may
    differ in shape from the exhaustive path, never in effect — the patch
    guarantee above holds identically).
    """
    if _same(a, b):
        return None
    return _op(a, b, memoize)


def _op(a: Any, b: Any, memoize: bool = False) -> list:
    """Edit op for two trees already known to differ."""
    if type(a) is not type(b):
        return ["r", b]
    if isinstance(a, dict):
        return _shrink(_dict_op(a, b, memoize), b, memoize)
    if isinstance(a, (list, tuple)):
        return _shrink(_seq_op(a, b, memoize), b, memoize)
    if isinstance(a, (set, frozenset)):
        added = sorted((x for x in b if x not in a), key=_sort_key)
        removed = sorted((x for x in a if x not in b), key=_sort_key)
        return _shrink(["s", added, removed], b, memoize)
    return ["r", b]


_CONTAINER_WIRE = {
    kind: len(json.dumps({"t": kind, "v": []}, separators=(",", ":")))
    for kind in ("list", "tuple", "set", "frozenset", "dict")
}
"""Compact-JSON overhead of an *empty* tagged container — the fixed part
of :func:`_wire_size`'s per-container accounting."""


def _wire_size(obj: Any, budget: int) -> Optional[int]:
    """Exact compact-JSON wire length of ``encode_state(obj)``, or None as
    soon as the running total exceeds ``budget``.

    This is the memoized :func:`_shrink`'s early exit: sizing an unchanged
    multi-megabyte window subtree stops after ``budget`` bytes instead of
    serializing all of it.  Exactness matters — the shrink *decision* must
    be byte-identical to actually encoding the replacement — so every
    scalar is measured with the same ``json.dumps`` the frame writer uses
    (string escapes, float reprs), and container overheads mirror the
    tagged codec's envelope precisely (verified against the real encoder
    in the test suite).
    """
    if budget < 0:
        return None
    if obj is None or obj is True:
        size = 4
    elif obj is False:
        size = 5
    elif type(obj) is int:
        size = len(str(obj))
    elif isinstance(obj, _SCALARS):
        # str (escapes) and float (shortest repr) — and any bool/int
        # subclass oddity — measured by the real serializer on the leaf.
        size = len(json.dumps(obj))
    elif isinstance(obj, (list, tuple, set, frozenset)):
        if isinstance(obj, list):
            kind = "list"
        elif isinstance(obj, tuple):
            kind = "tuple"
        elif isinstance(obj, set):
            kind = "set"
        else:
            kind = "frozenset"
        size = _CONTAINER_WIRE[kind] + max(0, len(obj) - 1)
        if size > budget:
            return None
        for x in obj:  # member order never changes the total
            child = _wire_size(x, budget - size)
            if child is None:
                return None
            size += child
    elif isinstance(obj, dict):
        # {"t":"dict","v":[[k,v],...]} — 3 bytes per pair ("[", ",", "]")
        # plus the commas between pairs; pair sort order is size-neutral.
        n = len(obj)
        size = _CONTAINER_WIRE["dict"] + (4 * n - 1 if n else 0)
        if size > budget:
            return None
        for key, value in obj.items():
            child = _wire_size(key, budget - size)
            if child is None:
                return None
            size += child
            child = _wire_size(value, budget - size)
            if child is None:
                return None
            size += child
    else:
        raise CheckpointError(
            f"cannot checkpoint object of type {type(obj).__name__}: {obj!r}"
        )
    return size if size <= budget else None


def _shrink(op: list, b: Any, memoize: bool = False) -> list:
    """Cap an edit op at the cost of plain replacement.

    When most of a container changed (small windows, heavy churn), the
    structural script's per-edit overhead can exceed simply shipping the
    new value — compare wire sizes (the :func:`encode_op` form records
    actually travel in) and emit whichever is smaller, so a delta record
    is never pathologically larger than the state it moves.

    The memoized path makes the same decision without paying for it: the
    op's wire size (churn-proportional) sets the budget, and
    :func:`_wire_size` streams the replacement's size only up to that
    budget — a huge mostly-unchanged subtree bails out after a few edit-
    script-sized bytes instead of being fully serialized at every level
    of the recursion.
    """
    op_wire = len(json.dumps(encode_op(op), separators=(",", ":")))
    if memoize:
        # wire(["r", b]) == 6 + wire(encode_state(b)):  '["r",' ... ']'
        if _wire_size(b, op_wire - 6) is not None:
            return ["r", b]
        return op
    replacement = ["r", b]
    if op_wire >= len(
        json.dumps(encode_op(replacement), separators=(",", ":"))
    ):
        return replacement
    return op


def _dict_op(a: dict, b: dict, memoize: bool = False) -> list:
    sets: List[list] = []
    dels = sorted((k for k in a if k not in b), key=_sort_key)
    for key, value in b.items():
        if key in a:
            if not _same(a[key], value):
                sets.append([key, _op(a[key], value, memoize)])
        else:
            sets.append([key, ["r", value]])
    sets.sort(key=lambda pair: _sort_key(pair[0]))
    return ["d", sets, dels]


def _coarse_key(value: Any) -> tuple:
    """Cheap deterministic alignment signature (the memoize path).

    Type + length + (recursively) the head element, never a full canonical
    encoding — so aligning a thousand untouched multi-kilobyte window
    entries costs tuple hashing, not serialization.  Equal values always
    produce equal keys; *unequal* values may collide, which costs script
    shape only (the ``equal``-run demotion pass in :func:`_seq_op` repairs
    any collision with real ``_same`` checks), never patch correctness.
    """
    if value is None or isinstance(value, _SCALARS):
        return (type(value).__name__, repr(value))
    if isinstance(value, (list, tuple)):
        if not value:
            return (type(value).__name__, 0)
        return (type(value).__name__, len(value), _coarse_key(value[0]))
    if isinstance(value, (set, frozenset)):
        return (type(value).__name__, len(value))
    if isinstance(value, dict):
        return ("dict", len(value))
    return (type(value).__name__,)


def _seq_op(a, b, memoize: bool = False) -> list:
    """Splice-style edit script for lists/tuples.

    Common prefix/suffix are trimmed first (the dominant sliding-window
    pattern — expire at the head, append at the tail — reduces to pure
    splices), then the middles are aligned with ``difflib`` over canonical
    element keys so scattered single-element changes (a touched keyword's
    window entries inside the sorted per-keyword list) become nested
    patches instead of wholesale replacement.

    With ``memoize`` the alignment keys are the coarse signatures of
    :func:`_coarse_key`; the matcher's ``equal`` runs are then re-checked
    element-wise with :func:`_same` and any collision demoted to an
    in-place patch, so a false alignment can never leak a stale element
    through a ``keep`` op.
    """
    prefix = 0
    limit = min(len(a), len(b))
    while prefix < limit and _same(a[prefix], b[prefix]):
        prefix += 1
    suffix = 0
    limit = min(len(a), len(b)) - prefix
    while suffix < limit and _same(a[-1 - suffix], b[-1 - suffix]):
        suffix += 1
    mid_a = list(a[prefix : len(a) - suffix])
    mid_b = list(b[prefix : len(b) - suffix])
    edits: List[list] = []
    if prefix:
        edits.append(["k", prefix])
    key_of = _coarse_key if memoize else _canon_key
    keys_a = [key_of(x) for x in mid_a]
    keys_b = [key_of(x) for x in mid_b]
    matcher = difflib.SequenceMatcher(None, keys_a, keys_b, autojunk=False)
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            if not memoize:
                edits.append(["k", i2 - i1])
                continue
            # Coarse keys may collide; keep only truly-equal runs, patch
            # the rest in place.
            count = i2 - i1
            flags = [
                _same(mid_a[i1 + k], mid_b[j1 + k]) for k in range(count)
            ]
            k = 0
            while k < count:
                run_start, same = k, flags[k]
                while k < count and flags[k] == same:
                    k += 1
                if same:
                    edits.append(["k", k - run_start])
                else:
                    edits.append(
                        [
                            "p",
                            [
                                _op(mid_a[i1 + t], mid_b[j1 + t], memoize)
                                for t in range(run_start, k)
                            ],
                        ]
                    )
        elif tag == "delete":
            edits.append(["x", i2 - i1])
        elif tag == "insert":
            edits.append(["i", mid_b[j1:j2]])
        elif i2 - i1 == j2 - j1:
            # positional replacement run: patch element-wise so an entry
            # that changed in place costs its own small edit script
            edits.append(
                [
                    "p",
                    [
                        _op(x, y, memoize)
                        for x, y in zip(mid_a[i1:i2], mid_b[j1:j2])
                    ],
                ]
            )
        else:
            edits.append(["x", i2 - i1])
            edits.append(["i", mid_b[j1:j2]])
    return ["l", edits]


def encode_op(op: Optional[list]) -> Optional[list]:
    """JSON-safe form of an edit script: plain structure, tagged payloads.

    The script *structure* (tags, splice counts, nesting) is plain JSON
    arrays — running it through the tagged state codec would roughly
    triple its size, and structure is most of a churn-heavy record.  Only
    the embedded *state values* (replacement payloads, inserted elements,
    set members, dict keys) need :func:`encode_state`, because they can
    hold tuples/sets/non-string keys that raw JSON cannot represent.
    """
    if op is None:
        return None
    tag = op[0]
    if tag == "r":
        return ["r", encode_state(op[1])]
    if tag == "d":
        return [
            "d",
            [[encode_state(k), encode_op(sub)] for k, sub in op[1]],
            [encode_state(k) for k in op[2]],
        ]
    if tag == "s":
        return [
            "s",
            [encode_state(x) for x in op[1]],
            [encode_state(x) for x in op[2]],
        ]
    if tag == "l":
        edits = []
        for edit in op[1]:
            kind = edit[0]
            if kind in ("k", "x"):
                edits.append([kind, edit[1]])
            elif kind == "i":
                edits.append(["i", [encode_state(x) for x in edit[1]]])
            elif kind == "p":
                edits.append(["p", [encode_op(sub) for sub in edit[1]]])
            else:
                raise CheckpointError(f"unknown sequence edit {kind!r}")
        return ["l", edits]
    raise CheckpointError(f"unknown state edit tag: {tag!r}")


def decode_op(op: Optional[list]) -> Optional[list]:
    """Inverse of :func:`encode_op`; raises on a malformed script."""
    if op is None:
        return None
    if not isinstance(op, list) or not op:
        raise CheckpointError(f"malformed state edit op: {op!r}")
    tag = op[0]
    if tag == "r":
        return ["r", decode_state(op[1])]
    if tag == "d":
        return [
            "d",
            [[decode_state(k), decode_op(sub)] for k, sub in op[1]],
            [decode_state(k) for k in op[2]],
        ]
    if tag == "s":
        return [
            "s",
            [decode_state(x) for x in op[1]],
            [decode_state(x) for x in op[2]],
        ]
    if tag == "l":
        edits = []
        for edit in op[1]:
            kind = edit[0]
            if kind in ("k", "x"):
                edits.append([kind, edit[1]])
            elif kind == "i":
                edits.append(["i", [decode_state(x) for x in edit[1]]])
            elif kind == "p":
                edits.append(["p", [decode_op(sub) for sub in edit[1]]])
            else:
                raise CheckpointError(f"unknown sequence edit {kind!r}")
        return ["l", edits]
    raise CheckpointError(f"unknown state edit tag: {tag!r}")


def patch_tree(a: Any, op: Optional[list]) -> Any:
    """Apply an edit script produced by :func:`diff_trees`.

    Non-mutating: returns a new tree sharing unchanged substructure with
    ``a``.  A script that does not fit the tree (missing dict key, splice
    overrun, unknown tag) raises :class:`CheckpointError` — a delta log
    must never be applied to the wrong base state silently.
    """
    if op is None:
        return a
    if not isinstance(op, list) or not op:
        raise CheckpointError(f"malformed state edit op: {op!r}")
    tag = op[0]
    if tag == "r":
        return op[1]
    if tag == "d":
        if not isinstance(a, dict):
            raise CheckpointError(
                f"dict edit applied to {type(a).__name__} state"
            )
        out = dict(a)
        for key in op[2]:
            if key not in out:
                raise CheckpointError(
                    f"state edit deletes missing dict key {key!r}"
                )
            del out[key]
        for key, sub in op[1]:
            if key in out:
                out[key] = patch_tree(out[key], sub)
            elif isinstance(sub, list) and sub and sub[0] == "r":
                out[key] = sub[1]
            else:
                raise CheckpointError(
                    f"state edit patches missing dict key {key!r}"
                )
        return out
    if tag == "s":
        if not isinstance(a, (set, frozenset)):
            raise CheckpointError(
                f"set edit applied to {type(a).__name__} state"
            )
        out = set(a)
        for value in op[2]:
            if value not in out:
                raise CheckpointError(
                    f"state edit removes missing set member {value!r}"
                )
            out.discard(value)
        out.update(op[1])
        return frozenset(out) if isinstance(a, frozenset) else out
    if tag == "l":
        if not isinstance(a, (list, tuple)):
            raise CheckpointError(
                f"sequence edit applied to {type(a).__name__} state"
            )
        out: List[Any] = []
        i = 0
        for edit in op[1]:
            kind = edit[0]
            if kind == "k":
                out.extend(a[i : i + edit[1]])
                i += edit[1]
            elif kind == "x":
                i += edit[1]
            elif kind == "i":
                out.extend(edit[1])
            elif kind == "p":
                for sub in edit[1]:
                    if i >= len(a):
                        raise CheckpointError(
                            "sequence edit script overruns the state"
                        )
                    out.append(patch_tree(a[i], sub))
                    i += 1
            else:
                raise CheckpointError(f"unknown sequence edit {kind!r}")
            if i > len(a):
                raise CheckpointError(
                    "sequence edit script overruns the state"
                )
        out.extend(a[i:])
        return tuple(out) if isinstance(a, tuple) else out
    raise CheckpointError(f"unknown state edit tag: {tag!r}")


# =====================================================================
# Frame codec
# =====================================================================


def encode_frame(record: dict) -> bytes:
    """One framed log record: length + CRC32 header, JSON payload."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frames(data: bytes, *, offset: int = 0) -> Tuple[List[dict], int]:
    """Parse frames from ``data[offset:]``; stops at the first torn frame.

    Returns ``(records, end_offset)`` where ``end_offset`` is the byte
    position after the last *complete, checksummed* frame — the consistent
    prefix.  A short header, a payload extending past EOF, an absurd
    length, or a CRC mismatch all mark the torn tail a crash can leave; a
    checksummed frame that is not valid JSON means the writer itself was
    broken and raises :class:`CheckpointError`.
    """
    records: List[dict] = []
    position = offset
    size = len(data)
    while True:
        if position + _FRAME_HEADER.size > size:
            break
        length, crc = _FRAME_HEADER.unpack_from(data, position)
        if length > _MAX_FRAME or position + _FRAME_HEADER.size + length > size:
            break
        start = position + _FRAME_HEADER.size
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            break
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"delta log record at byte {position} passed its checksum "
                f"but is not valid JSON: {exc}"
            ) from exc
        position = start + length
    return records, position


# =====================================================================
# Manifest
# =====================================================================


def _base_name(generation: int) -> str:
    return f"base-{generation}.ckpt"


def _log_name(generation: int) -> str:
    return f"deltas-{generation}.log"


def write_manifest(directory: Path, manifest: dict) -> None:
    """Atomically replace ``MANIFEST.json`` (temp file + rename + dir fsync)."""
    target = directory / MANIFEST_NAME
    data = json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8")
    try:
        fd, scratch_name = tempfile.mkstemp(
            dir=directory, prefix=MANIFEST_NAME + ".", suffix=".tmp"
        )
    except OSError as exc:
        raise CheckpointError(
            f"cannot write delta-checkpoint manifest in {directory}: {exc}"
        ) from exc
    scratch = Path(scratch_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(scratch, target)
        fsync_dir(directory)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write delta-checkpoint manifest {target}: {exc}"
        ) from exc
    finally:
        scratch.unlink(missing_ok=True)


def read_manifest(directory: Path) -> dict:
    """Read and validate ``MANIFEST.json``; raises readable errors."""
    path = Path(directory) / MANIFEST_NAME
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise CheckpointError(
            f"{directory} is not a delta checkpoint: cannot read "
            f"{MANIFEST_NAME}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != DELTA_FORMAT:
        raise CheckpointError(
            f"{path} is not a repro delta-checkpoint manifest"
        )
    if manifest.get("version") != DELTA_VERSION:
        raise CheckpointError(
            f"{path} has delta-checkpoint version "
            f"{manifest.get('version')!r}; this build reads version "
            f"{DELTA_VERSION}"
        )
    for field in ("generation", "base", "log", "base_quantum"):
        if field not in manifest:
            raise CheckpointError(
                f"{path} is missing the {field!r} manifest field"
            )
    return manifest


# =====================================================================
# Transport seam
# =====================================================================


@runtime_checkable
class DeltaTransport(Protocol):
    """How a follower reaches a leader's delta checkpoint.

    ``FileTailTransport`` implements it over a shared filesystem; a socket
    transport only has to serve the same three calls to plug a follower
    into a network replication channel.
    """

    def manifest(self) -> dict:
        """Current manifest (generation pointer)."""
        ...

    def load_base(self, manifest: dict) -> dict:
        """Decoded state tree of the manifest's base snapshot."""
        ...

    def read_records(
        self, manifest: dict, offset: int
    ) -> Tuple[List[dict], int]:
        """Records appended past ``offset``; returns (records, new offset)."""
        ...


class FileTailTransport:
    """Tail a delta-checkpoint directory on a (shared) filesystem."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def manifest(self) -> dict:
        return read_manifest(self.path)

    def load_base(self, manifest: dict) -> dict:
        return load_checkpoint(self.path / manifest["base"])

    def read_records(
        self, manifest: dict, offset: int
    ) -> Tuple[List[dict], int]:
        path = self.path / manifest["log"]
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read delta log {path}: {exc}"
            ) from exc
        if offset == 0:
            if data[: len(_LOG_MAGIC)] != _LOG_MAGIC:
                raise CheckpointError(
                    f"{path} is not a repro delta log (bad magic)"
                )
            offset = len(_LOG_MAGIC)
        return decode_frames(data, offset=offset)


# =====================================================================
# Reader: replay base + deltas into one state tree
# =====================================================================


def apply_record(state: dict, record: dict) -> dict:
    """Apply one log record to a state tree, enforcing quantum continuity."""
    if not isinstance(record, dict) or "q" not in record or "op" not in record:
        raise CheckpointError(f"malformed delta log record: {record!r}")
    expected = state["quantum"] + 1
    if record["q"] != expected:
        raise CheckpointError(
            f"delta log is discontinuous: expected the record for quantum "
            f"{expected}, found quantum {record['q']!r}"
        )
    try:
        return patch_tree(state, decode_op(record["op"]))
    except CheckpointError as exc:
        raise CheckpointError(
            f"cannot apply delta record for quantum {record['q']}: {exc}"
        ) from exc


def read_delta_checkpoint(path) -> dict:
    """Replay a delta-checkpoint directory into one decoded state tree.

    The result is bit-identical (through the canonical codec, byte-
    identical on re-serialization) to a monolithic snapshot taken at the
    same stream position — the v4 reader the monolithic
    :func:`~repro.api.checkpoint.load_checkpoint` dispatches to for
    directories.
    """
    transport = FileTailTransport(path)
    manifest = transport.manifest()
    state = transport.load_base(manifest)
    if state.get("quantum") != manifest["base_quantum"]:
        raise CheckpointError(
            f"{path}: base snapshot is at quantum {state.get('quantum')!r} "
            f"but the manifest says {manifest['base_quantum']!r}"
        )
    records, _ = transport.read_records(manifest, 0)
    for record in records:
        state = apply_record(state, record)
    return state


# =====================================================================
# Writer (leader side)
# =====================================================================


class DeltaCheckpointWriter:
    """Leader-side delta checkpoint: base snapshot + append-only edit log.

    ``start(state)`` opens (or creates) the directory and writes a fresh
    generation whose base is ``state``; ``append(state)`` logs one framed
    edit script per quantum and compacts — rewrite base, truncate log,
    flip manifest — once the log exceeds ``compact_ratio`` times the base
    size.  Every append fsyncs the log file *and* its directory; base and
    manifest writes are atomic-rename durable.  A writer whose append
    failed mid-frame refuses further appends (the log tail is torn; the
    next leader attaches with a fresh generation instead).

    ``memoize`` (default on) keeps append cost proportional to what
    actually changed: the edit script is computed with the churn-
    proportional :func:`diff_trees` profile, and the writer's reference
    copy of the previous state is maintained by *patching it forward*
    with the (deep-copied) op — sharing every unchanged subtree across
    quanta — instead of deep-copying the entire state each append.
    ``memoize=False`` restores the exhaustive profile for comparison
    (``benchmarks/bench_delta_checkpoint.py`` gates the speedup).  Log
    contents decode to identical states either way.
    """

    def __init__(
        self, path, *, compact_ratio: float = 4.0, memoize: bool = True
    ) -> None:
        if compact_ratio <= 0:
            raise CheckpointError(
                f"compact_ratio must be positive, got {compact_ratio!r}"
            )
        self.path = Path(path)
        self.compact_ratio = compact_ratio
        self.memoize = bool(memoize)
        self.generation = -1
        self.base_bytes = 0
        self.log_bytes = 0
        self.records_written = 0
        self.delta_bytes_total = 0
        self.compactions = 0
        self.append_seconds = 0.0
        self._fh = None
        self._last: Optional[dict] = None
        self._broken = False

    # ------------------------------------------------------------ lifecycle

    def start(self, state: dict) -> None:
        """Create or attach to the directory; write a new generation."""
        try:
            self.path.mkdir(exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create delta checkpoint directory "
                f"{self.path}: {exc}"
            ) from exc
        generation = 0
        if (self.path / MANIFEST_NAME).exists():
            generation = read_manifest(self.path)["generation"] + 1
        self._roll(state, generation)

    def append(self, state: dict) -> int:
        """Log one quantum's edit script; returns the frame size in bytes."""
        if self._fh is None:
            raise CheckpointError("delta log writer is not started")
        if self._broken:
            raise CheckpointError(
                "delta log writer is broken after a failed append; the log "
                "tail may be torn — start a new leader (fresh generation) "
                "instead of appending further"
            )
        started = time.perf_counter()
        op = diff_trees(self._last, state, memoize=self.memoize)
        frame = encode_frame(
            {"q": state["quantum"], "op": encode_op(op)}
        )
        try:
            self._fh.write(frame)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            fsync_dir(self.path)
        except OSError as exc:
            self._broken = True
            raise CheckpointError(
                f"cannot append to delta log in {self.path}: {exc}"
            ) from exc
        if self.memoize:
            # patch(last, diff(last, state)) == state exactly, and the op's
            # replacement values are deep-copied — so the reference tree
            # shares unchanged subtrees with the *previous* reference (all
            # writer-owned), never with the caller's live state.
            self._last = patch_tree(self._last, copy.deepcopy(op))
        else:
            self._last = copy.deepcopy(state)
        self.log_bytes += len(frame)
        self.records_written += 1
        self.delta_bytes_total += len(frame)
        self.append_seconds += time.perf_counter() - started
        if self.log_bytes > self.compact_ratio * max(self.base_bytes, 1):
            self._roll(state, self.generation + 1)
            self.compactions += 1
        return len(frame)

    def close(self) -> None:
        """Close the log file handle (appends already fsynced)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "DeltaCheckpointWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------ internals

    def _roll(self, state: dict, generation: int) -> None:
        """Write a fresh generation (new base, empty log, manifest flip)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        base = self.path / _base_name(generation)
        log = self.path / _log_name(generation)
        save_checkpoint(base, state)
        try:
            fh = open(log, "wb")
            fh.write(_LOG_MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
            fsync_dir(self.path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create delta log {log}: {exc}"
            ) from exc
        write_manifest(
            self.path,
            {
                "format": DELTA_FORMAT,
                "version": DELTA_VERSION,
                "generation": generation,
                "base": base.name,
                "log": log.name,
                "base_quantum": state["quantum"],
            },
        )
        self._fh = fh
        self._last = copy.deepcopy(state)
        previous = self.generation
        self.generation = generation
        self.base_bytes = base.stat().st_size
        self.log_bytes = 0
        if previous >= 0 and previous != generation:
            # Old-generation files are garbage after the manifest flip; a
            # follower mid-read keeps its open descriptor (POSIX) and picks
            # up the new generation at its next manifest poll.
            for stale in (
                self.path / _base_name(previous),
                self.path / _log_name(previous),
            ):
                try:
                    stale.unlink(missing_ok=True)
                except OSError:
                    pass


__all__ = [
    "DELTA_FORMAT",
    "DELTA_VERSION",
    "MANIFEST_NAME",
    "DeltaCheckpointWriter",
    "DeltaTransport",
    "FileTailTransport",
    "apply_record",
    "decode_frames",
    "decode_op",
    "diff_trees",
    "encode_frame",
    "encode_op",
    "patch_tree",
    "read_delta_checkpoint",
    "read_manifest",
    "write_manifest",
]
