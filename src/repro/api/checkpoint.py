"""Versioned on-disk checkpoint format for detector sessions.

A checkpoint is a single JSON document::

    {"format": "repro-session-checkpoint", "version": 1, "state": <encoded>}

``state`` is the session's composed ``to_state()`` tree (DESIGN.md
Section 6) run through a small *tagged* encoding, because plain JSON cannot
represent the state faithfully: user ids may be non-string hashables used as
dict keys, edge keys are tuples, window id sets are sets.  Every container
is wrapped as ``{"t": <kind>, "v": <payload>}`` — ``list``, ``tuple``,
``set``, ``frozenset``, and ``dict`` (payload: list of ``[key, value]``
pairs) — and scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass
through untouched.  Python's shortest-roundtrip float repr makes the float
trip exact, which the bit-identical resume guarantee relies on.

The encoding is **canonical**: set members and dict pairs serialize in a
deterministic sorted order, so two state trees that compare equal encode
to identical bytes no matter how their containers were built.  The delta
checkpoint format (:mod:`repro.api.deltalog`) leans on this — a state tree
reconstructed by replaying base + per-quantum edit scripts re-serializes
byte-for-byte like a monolithic snapshot taken at the same position.

Compatibility is handled loudly and explicitly: an unknown format, a newer
``version``, an unmigratable older ``version``, or an unknown tag raises
:class:`~repro.errors.CheckpointError` instead of best-effort loading a
state the code cannot honour.  Supported older versions are upgraded
in-memory through the ``_MIGRATIONS`` table — one pure ``state -> state``
step per version hop, chained until the current layout is reached — so a
v2 snapshot (pre-extractor) loads under the v3 reader without ever
rewriting the file on disk.

Checkpoints are **execution-agnostic and history-independent**: the session
strips the execution-only config fields (``workers``/``shard_count``), the
sharded front-end writes its window state merged into the serial layout,
and every stateful layer serializes in content-sorted order — so the same
stream position produces the same checkpoint bytes whether the session ran
serially or sharded, uninterrupted or through any number of earlier
snapshot/restore cycles, and any checkpoint resumes under any worker count
(DESIGN.md Section 7).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError

CHECKPOINT_FORMAT = "repro-session-checkpoint"
CHECKPOINT_VERSION = 3
"""Bump on any change to the state tree layout, and add a migration step
below so supported older snapshots keep loading.
Version history: 1 — PR 3 layout (no longer readable); 2 — event histories
are change-point encoded (``EventTracker`` state gained ``last_quantum``
and per-record ``gaps``) and execution-only config fields are stripped;
3 — extractor identity recorded (``extractor`` spec + ``custom_extractor``
flag replacing ``custom_tokenizer``) and the first timing slot renamed
``tokenize`` → ``extract`` with the stage."""

_SCALARS = (bool, int, float, str)


def _migrate_v2_to_v3(state: dict) -> dict:
    """v2 (pre-extractor) → v3: the keyword path was the only path.

    A v2 session tokenized text, full stop — so its extractor identity is
    the default ``keyword`` spec (or a custom tokenizer, which v2 recorded
    as ``custom_tokenizer`` and v3 generalises to ``custom_extractor``),
    and its ``tokenize`` timing slot is v3's ``extract``.  The embedded
    config predates the ``extractor``/``extractor_options`` fields and
    falls back to their keyword defaults on ``from_dict``.
    """
    state = dict(state)
    custom = state.pop("custom_tokenizer")
    state["custom_extractor"] = custom
    state["extractor"] = (
        None if custom else {"name": "keyword", "options": {}}
    )
    timings = dict(state["timings"])
    timings["extract"] = timings.pop("tokenize")
    state["timings"] = timings
    return state


_MIGRATIONS = {2: _migrate_v2_to_v3}
"""``version -> state migration`` steps; each maps a decoded state tree one
version forward.  :func:`load_checkpoint` chains them until
``CHECKPOINT_VERSION`` is reached."""


def encode_state(obj: Any) -> Any:
    """Encode a state tree into the tagged JSON-safe form."""
    if obj is None or isinstance(obj, _SCALARS):
        return obj
    if isinstance(obj, list):
        return {"t": "list", "v": [encode_state(x) for x in obj]}
    if isinstance(obj, tuple):
        return {"t": "tuple", "v": [encode_state(x) for x in obj]}
    if isinstance(obj, (set, frozenset)):
        kind = "set" if isinstance(obj, set) else "frozenset"
        return {
            "t": kind,
            "v": [encode_state(x) for x in sorted(obj, key=repr)],
        }
    if isinstance(obj, dict):
        # Canonical pair order: sort by the JSON rendering of the encoded
        # key.  Keys are unique, so the order is total and deterministic —
        # equal dicts encode identically however they were assembled
        # (fresh ``to_state()`` vs. a replayed delta-log patch).
        pairs = [[encode_state(k), encode_state(v)] for k, v in obj.items()]
        pairs.sort(
            key=lambda pair: json.dumps(
                pair[0], sort_keys=True, separators=(",", ":")
            )
        )
        return {"t": "dict", "v": pairs}
    raise CheckpointError(
        f"cannot checkpoint object of type {type(obj).__name__}: {obj!r}"
    )


def decode_state(obj: Any) -> Any:
    """Inverse of :func:`encode_state`."""
    if obj is None or isinstance(obj, _SCALARS):
        return obj
    if isinstance(obj, dict):
        try:
            tag, payload = obj["t"], obj["v"]
        except KeyError:
            raise CheckpointError(f"malformed tagged value: {obj!r}") from None
        if tag == "list":
            return [decode_state(x) for x in payload]
        if tag == "tuple":
            return tuple(decode_state(x) for x in payload)
        if tag == "set":
            return {decode_state(x) for x in payload}
        if tag == "frozenset":
            return frozenset(decode_state(x) for x in payload)
        if tag == "dict":
            return {decode_state(k): decode_state(v) for k, v in payload}
        raise CheckpointError(f"unknown state tag: {tag!r}")
    raise CheckpointError(f"unexpected raw JSON value in state: {obj!r}")


def fsync_dir(path: "str | Path") -> None:
    """fsync a directory so a rename/creation inside it survives a crash.

    ``os.replace`` makes a write atomic but not durable: until the parent
    directory's entry is flushed, a crash can roll the rename back and
    lose a checkpoint that appeared to succeed.  Raises
    :class:`CheckpointError` on failure — an unflushable directory means
    the write is *not* durable and pretending otherwise defeats the point.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError as exc:
        raise CheckpointError(
            f"cannot open directory {path} for fsync: {exc}"
        ) from exc
    try:
        os.fsync(fd)
    except OSError as exc:
        raise CheckpointError(
            f"cannot fsync directory {path}: {exc}"
        ) from exc
    finally:
        os.close(fd)


def save_checkpoint(path: "str | Path", state: dict) -> None:
    """Write one session state tree as a versioned checkpoint file.

    The write is crash-durable end to end: a *uniquely named* temp file
    (``tempfile.mkstemp`` in the target directory, so concurrent
    snapshotters — e.g. a leader and a follower compacting to the same
    target — never clobber each other's scratch), fsync, atomic
    ``os.replace``, then an fsync of the parent directory so the rename
    itself survives a crash.  The scratch file is removed on every failure
    path, not just ``OSError``.
    """
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "state": encode_state(state),
    }
    target = Path(path)
    directory = target.parent
    try:
        fd, scratch_name = tempfile.mkstemp(
            dir=directory, prefix=target.name + ".", suffix=".tmp"
        )
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {path}: {exc}"
        ) from exc
    scratch = Path(scratch_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(document, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(scratch, target)
        fsync_dir(directory)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {path}: {exc}"
        ) from exc
    finally:
        scratch.unlink(missing_ok=True)


def load_checkpoint(path: "str | Path") -> dict:
    """Read and validate a checkpoint; returns the decoded state tree.

    A directory is read as a *delta checkpoint* (version 4, base snapshot
    plus per-quantum edit log — :mod:`repro.api.deltalog`): the log's
    consistent prefix is replayed onto the base, yielding a state tree
    bit-identical to a monolithic snapshot at the same stream position.
    """
    if Path(path).is_dir():
        from repro.api.deltalog import read_delta_checkpoint

        return read_delta_checkpoint(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path} is not valid JSON: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("format") != CHECKPOINT_FORMAT
    ):
        raise CheckpointError(f"{path} is not a repro session checkpoint")
    version = document.get("version")
    readable = sorted({CHECKPOINT_VERSION, *_MIGRATIONS})
    if version not in readable:
        raise CheckpointError(
            f"{path} has checkpoint version {version!r}; this build reads "
            f"version {CHECKPOINT_VERSION} and can migrate versions "
            f"{', '.join(str(v) for v in sorted(_MIGRATIONS))}"
        )
    state = decode_state(document["state"])
    while version < CHECKPOINT_VERSION:
        state = _MIGRATIONS[version](state)
        version += 1
    return state


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "encode_state",
    "decode_state",
    "fsync_dir",
    "save_checkpoint",
    "load_checkpoint",
]
