"""The push-side vocabulary of a session: cluster lifecycle notifications.

The paper frames discovery as tracking *emerging, growing and dying*
clusters in real time (Section 4.2); this module is that framing as a typed
API.  Once per quantum the session diffs the post-filter report against the
last notified state and emits one :class:`SessionEvent` per transition:

* ``EMERGING`` — an event id entered the reported set;
* ``GROWING`` — a reported event gained at least one keyword since its last
  report (equal-size keyword turnover counts: something new joined);
* ``RANK_CHANGED`` — a reported event's rank moved (any direction);
* ``DYING`` — a previously reported event id left the reported set
  (cluster death, absorption, or falling below the report filters).

Within one quantum, notifications are delivered in the report's
rank-descending order (``GROWING`` before ``RANK_CHANGED`` for the same
event), followed by ``DYING`` notifications in event-id order — a
deterministic sequence, which is what makes the checkpoint/restore
differential test on sink output possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class EventKind(str, Enum):
    """The four cluster lifecycle transitions a session can notify."""

    EMERGING = "emerging"
    GROWING = "growing"
    DYING = "dying"
    RANK_CHANGED = "rank_changed"


@dataclass(frozen=True)
class SessionEvent:
    """One lifecycle notification delivered to subscribed sinks.

    ``previous_rank`` / ``previous_size`` carry the last-notified values for
    ``GROWING`` and ``RANK_CHANGED`` transitions (``None`` for ``EMERGING``);
    a ``DYING`` event carries the event's final reported state.
    """

    kind: EventKind
    quantum: int
    event_id: int
    keywords: frozenset
    rank: float
    size: int
    previous_rank: Optional[float] = None
    previous_size: Optional[int] = None


__all__ = ["EventKind", "SessionEvent"]
