"""MinHash sketches for efficient edge-candidate discovery (Section 3.2.2).

Each keyword keeps the ``p`` minimum hash values over the user ids in its
window id set.  Two keywords become an edge *candidate* when their sketches
share at least one value; the probability of the single-minimum variant
matching equals the Jaccard coefficient, and keeping p minima drives the
false-negative rate down (Cohen [6, 7]).  ``p = min(theta / 2, 1 / gamma)``
per the paper.

Hashing uses a salted 64-bit blake2b digest so results are stable across
processes and independent of ``PYTHONHASHSEED``; per-user hashes are memoised
because the same users recur across quanta.
"""

from __future__ import annotations

import heapq
from collections import deque
from hashlib import blake2b
from typing import Dict, Hashable, Iterable, Mapping, Tuple

from repro.errors import ConfigError

UserId = Hashable
Sketch = Tuple[int, ...]


class MinHasher:
    """Salted, memoised 64-bit user hashing + sketch construction."""

    def __init__(self, p: int, seed: int = 0) -> None:
        if p < 1:
            raise ConfigError(f"sketch size p must be >= 1, got {p}")
        self.p = p
        self._salt = seed.to_bytes(8, "little", signed=False)
        self._cache: Dict[UserId, int] = {}

    def hash_user(self, user: UserId) -> int:
        """Stable 64-bit hash of a user id (uniform over (0, 2^64))."""
        cached = self._cache.get(user)
        if cached is not None:
            return cached
        digest = blake2b(
            repr(user).encode("utf-8"), digest_size=8, salt=self._salt
        ).digest()
        value = int.from_bytes(digest, "big")
        self._cache[user] = value
        return value

    def sketch(self, users: Iterable[UserId]) -> Sketch:
        """The p smallest user hashes, ascending (may be shorter than p)."""
        return tuple(heapq.nsmallest(self.p, map(self.hash_user, users)))


class WindowedSketchIndex:
    """Sliding-window MinHash sketches maintained incrementally.

    The paper keeps "p Min-Hash values amongst all the user ids in the id
    set" per keyword.  Recomputing that from the full window id set every
    quantum costs O(window); instead this index stores a bottom-p
    mini-sketch per (quantum, keyword) — computed once from that quantum's
    new users only — and merges the ≤ ``window_quanta`` mini-sketches on
    demand (≤ w*p values).  Work per quantum is proportional to *new* data,
    matching the paper's real-time constraint.
    """

    def __init__(self, hasher: MinHasher, window_quanta: int) -> None:
        self.hasher = hasher
        self.window_quanta = window_quanta
        self._window: deque = deque()  # (quantum, {keyword: mini-sketch})

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[str, Iterable[UserId]]
    ) -> None:
        minis = {
            kw: self.hasher.sketch(users) for kw, users in keyword_users.items()
        }
        self._window.append((quantum, minis))
        while self._window and self._window[0][0] <= quantum - self.window_quanta:
            self._window.popleft()

    def sketch(self, keyword: str) -> Sketch:
        """Bottom-p hash values of the keyword's window id set."""
        values: set = set()
        for _, minis in self._window:
            mini = minis.get(keyword)
            if mini:
                values.update(mini)
        if len(values) <= self.hasher.p:
            return tuple(sorted(values))
        return tuple(heapq.nsmallest(self.hasher.p, values))


def sketches_share_value(sketch_a: Sketch, sketch_b: Sketch) -> bool:
    """Candidate test: do the two sketches share at least one hash value?

    Both sketches are ascending, so a linear merge suffices.
    """
    i = j = 0
    while i < len(sketch_a) and j < len(sketch_b):
        a, b = sketch_a[i], sketch_b[j]
        if a == b:
            return True
        if a < b:
            i += 1
        else:
            j += 1
    return False


def estimate_jaccard(sketch_a: Sketch, sketch_b: Sketch, p: int) -> float:
    """Bottom-p Jaccard estimate from two sketches.

    Takes the p smallest values of the union of the sketches and counts the
    fraction present in both — the standard bottom-k estimator.  Exact when
    either underlying set has at most p elements.
    """
    if not sketch_a or not sketch_b:
        return 0.0
    union_bottom = heapq.nsmallest(p, set(sketch_a) | set(sketch_b))
    if not union_bottom:
        return 0.0
    set_a, set_b = set(sketch_a), set(sketch_b)
    shared = sum(1 for v in union_bottom if v in set_a and v in set_b)
    return shared / len(union_bottom)


__all__ = [
    "MinHasher",
    "Sketch",
    "WindowedSketchIndex",
    "sketches_share_value",
    "estimate_jaccard",
]
