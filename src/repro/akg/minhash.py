"""MinHash sketches for efficient edge-candidate discovery (Section 3.2.2).

Each keyword keeps the ``p`` minimum hash values over the user ids in its
window id set.  Two keywords become an edge *candidate* when their sketches
share at least one value; the probability of the single-minimum variant
matching equals the Jaccard coefficient, and keeping p minima drives the
false-negative rate down (Cohen [6, 7]).  ``p = min(theta / 2, 1 / gamma)``
per the paper.

Hashing uses a salted 64-bit blake2b digest so results are stable across
processes and independent of ``PYTHONHASHSEED``; per-user hashes are memoised
because the same users recur across quanta.  The memo is *bounded*: the
AKG builder evicts users reported by ``SlideDelta.vanished_users`` — users
whose last window occurrence just expired — so the cache tracks the live
window population instead of every user id ever seen.
"""

from __future__ import annotations

import heapq
from collections import deque
from hashlib import blake2b
from typing import TYPE_CHECKING, Callable, Deque, Dict, Hashable, Iterable, Mapping, Set, Tuple

from repro.arrays import get_numpy
from repro.errors import ConfigError

if TYPE_CHECKING:  # type-only: the batched kernel reads its columns
    from repro.stream.window import QuantumColumns

UserId = Hashable
Sketch = Tuple[int, ...]


def user_hash_fn(seed: int) -> Callable[[UserId], int]:
    """The MinHash base-hash as a standalone function of the user id.

    Bit-identical to :meth:`MinHasher.hash_user` by construction (same
    digest, same salt derivation) — the batched backend installs this as the
    actor interner's hash column so each user is hashed exactly once per
    window residency, and the vectorized sketch kernel then works on the
    stored 64-bit values instead of re-hashing.
    """
    salt = seed.to_bytes(8, "little", signed=False)

    def hash_user(user: UserId) -> int:
        digest = blake2b(
            repr(user).encode("utf-8"), digest_size=8, salt=salt
        ).digest()
        return int.from_bytes(digest, "big")

    return hash_user


class MinHasher:
    """Salted, memoised 64-bit user hashing + sketch construction."""

    __slots__ = ("p", "_salt", "_cache")

    def __init__(self, p: int, seed: int = 0) -> None:
        if p < 1:
            raise ConfigError(f"sketch size p must be >= 1, got {p}")
        self.p = p
        self._salt = seed.to_bytes(8, "little", signed=False)
        self._cache: Dict[UserId, int] = {}

    def hash_user(self, user: UserId) -> int:
        """Stable 64-bit hash of a user id (uniform over (0, 2^64))."""
        cached = self._cache.get(user)
        if cached is not None:
            return cached
        digest = blake2b(
            repr(user).encode("utf-8"), digest_size=8, salt=self._salt
        ).digest()
        value = int.from_bytes(digest, "big")
        self._cache[user] = value
        return value

    def evict(self, users: Iterable[UserId]) -> int:
        """Drop memoised hashes for users that left the window entirely.

        Fed from ``SlideDelta.vanished_users`` on every slide; hashes are a
        pure salted function of the user id, so a user who later returns is
        simply re-memoised.  Returns the number of entries removed.
        """
        removed = 0
        cache = self._cache
        for user in users:
            if cache.pop(user, None) is not None:
                removed += 1
        return removed

    def clear(self) -> None:
        """Drop the whole memo (checkpoint restore: hashes re-warm on
        demand, being pure salted functions of the user id)."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Current number of memoised user hashes (cache-bound tests)."""
        return len(self._cache)

    def sketch(self, users: Iterable[UserId]) -> Sketch:
        """The p smallest *distinct* user hashes, ascending (may be < p).

        Hash values are deduplicated before the bottom-p cut so that a
        colliding pair of users cannot occupy two sketch slots — this keeps
        a from-scratch sketch of a union of sets identical to the merge of
        the per-set sketches, which the windowed index and its oracle rely
        on.  ``p == 1`` (a common outcome of the paper's
        ``min(theta/2, 1/gamma)`` derivation) short-circuits to a plain
        ``min`` — duplicates cannot matter for a single minimum.
        """
        hashes = map(self.hash_user, users)
        if self.p == 1:
            smallest = min(hashes, default=None)
            return () if smallest is None else (smallest,)
        return tuple(heapq.nsmallest(self.p, set(hashes)))


class WindowedSketchIndex:
    """Sliding-window MinHash sketches maintained incrementally.

    The paper keeps "p Min-Hash values amongst all the user ids in the id
    set" per keyword.  Recomputing that from the full window id set every
    quantum costs O(window); instead this index stores a deque of
    per-quantum dicts (keyword -> bottom-p mini-sketch, computed once from
    that quantum's users only) and merges a keyword's <= ``window_quanta``
    live minis into a cached full-window sketch on demand.

    The merged sketch is recomputed lazily and only when *dirtied*: a
    keyword's cache entry is invalidated exactly when it gains a mini-sketch
    (it appeared this quantum) or loses one (an entry expired).  Untouched
    keywords keep serving their cached sketch, so per-quantum sketch work is
    proportional to the delta, matching the paper's real-time constraint
    (DESIGN.md Section 5).
    """

    __slots__ = (
        "hasher",
        "window_quanta",
        "_quanta",
        "_merged",
        "_dirty",
        "merge_recomputes",
    )

    def __init__(self, hasher: MinHasher, window_quanta: int) -> None:
        self.hasher = hasher
        self.window_quanta = window_quanta
        # (quantum, keyword -> mini-sketch) — oldest first.  Storing whole
        # quanta makes the slide O(1) deque work plus one C-level set union
        # for dirty tracking, instead of one deque append/pop per keyword
        # per quantum; a keyword's window minis are gathered by probing the
        # <= window_quanta live dicts on (lazy, cached) merge.
        self._quanta: Deque[Tuple[int, Dict[str, Sketch]]] = deque()
        self._merged: Dict[str, Sketch] = {}
        self._dirty: Set[str] = set()
        # Number of merged-sketch rebuilds performed (work counter for the
        # dirty-only regression tests and the AKG bench).
        self.merge_recomputes = 0

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[str, Iterable[UserId]]
    ) -> None:
        sketch = self.hasher.sketch
        self.add_quantum_minis(
            quantum,
            {
                kw: mini
                for kw, users in keyword_users.items()
                if (mini := sketch(users))
            },
        )

    def add_quantum_minis(
        self, quantum: int, minis: Mapping[str, Sketch]
    ) -> None:
        """Ingest pre-computed per-quantum mini-sketches (batched backend).

        ``minis`` must hold, per keyword, the bottom-p distinct base-hash
        values of the quantum's users — exactly what :meth:`add_quantum`
        would compute via :meth:`MinHasher.sketch`.  The batched backend
        produces them vectorized from the actor interner's hash column
        (:func:`batched_quantum_minis`); everything downstream (expiry,
        dirty tracking, lazy merge, checkpoint layout) is the identical
        machinery, which is what keeps batched sketch state bit-identical
        to the reference path.
        """
        cutoff = quantum - self.window_quanta
        if any(minis.values()):
            entered = {kw: mini for kw, mini in minis.items() if mini}
            self._quanta.append((quantum, entered))
            self._dirty.update(entered)
        self._expire(cutoff)

    def _expire(self, cutoff: int) -> None:
        quanta = self._quanta
        merged = self._merged
        dirty = self._dirty
        while quanta and quanta[0][0] <= cutoff:
            _, expired = quanta.popleft()
            for kw in expired:
                merged.pop(kw, None)
                if any(kw in live for _, live in quanta):
                    dirty.add(kw)
                else:
                    dirty.discard(kw)

    def to_state(self) -> dict:
        """Checkpointable snapshot: the per-keyword mini-sketch deques.

        The expiry schedule is derivable from the deques and the merged-
        sketch cache is a pure function of them, so neither is stored;
        :meth:`from_state` rebuilds the schedule and marks every keyword
        dirty — the first post-restore query recomputes a merge identical to
        the pre-snapshot one (the merge is exact, DESIGN.md Section 5).
        Mini-sketches are emitted in sorted keyword order so the snapshot is
        a pure function of the window contents, which makes the sharded
        front-end's merged checkpoint byte-identical to a serial one.
        """
        by_kw: Dict[str, list] = {}
        for q, minis in self._quanta:
            for kw, mini in minis.items():
                by_kw.setdefault(kw, []).append([q, list(mini)])
        return {
            "minis": [[kw, entries] for kw, entries in sorted(by_kw.items())],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the index in place from :meth:`to_state` output."""
        by_quantum: Dict[int, Dict[str, Sketch]] = {}
        dirty: Set[str] = set()
        for kw, minis in state["minis"]:
            dirty.add(kw)
            for q, mini in minis:
                by_quantum.setdefault(q, {})[kw] = tuple(mini)
        self._quanta = deque(
            (q, by_quantum[q]) for q in sorted(by_quantum)
        )
        self._merged = {}
        self._dirty = dirty
        self.merge_recomputes = 0

    def sketch(self, keyword: str) -> Sketch:
        """Bottom-p hash values of the keyword's window id set (cached)."""
        if keyword not in self._dirty:
            cached = self._merged.get(keyword)
            if cached is not None:
                return cached
        values: set = set()
        for _, minis in self._quanta:
            mini = minis.get(keyword)
            if mini is not None:
                values.update(mini)
        if not values:
            return ()
        if len(values) <= self.hasher.p:
            merged = tuple(sorted(values))
        else:
            merged = tuple(heapq.nsmallest(self.hasher.p, values))
        self._merged[keyword] = merged
        self._dirty.discard(keyword)
        self.merge_recomputes += 1
        return merged


def batched_quantum_minis(
    columns: "QuantumColumns", hashes: list, p: int
) -> Dict[str, Sketch]:
    """Per-keyword bottom-p mini-sketches of one quantum, vectorized.

    ``columns`` are the quantum's deduplicated interned pair columns
    (:class:`~repro.stream.window.QuantumColumns`) and ``hashes`` the actor
    interner's 64-bit base-hash column, so no hashing happens here at all —
    only a gather plus sort/dedupe/take-p.  The numpy path does one lexsort
    over (entity, hash) for the whole quantum and selects each entity's
    first ``p`` distinct values in a handful of array ops; the fallback
    sorts per segment.  Both return ascending tuples of Python ints equal to
    ``MinHasher.sketch`` over the same users (same hash values, distinct,
    bottom-p) — the bit-identity contract of DESIGN.md Section 9.
    """
    segments = columns.segments
    if not segments:
        return {}
    np = get_numpy()
    act_col = columns.act_col
    if np is None:
        out: Dict[str, Sketch] = {}
        for (eid, lo, hi), kw in zip(segments, columns.ent_strings):
            values = sorted({hashes[a] for a in act_col[lo:hi]})
            out[kw] = tuple(values[:p])
        return out
    n = len(act_col)
    hash_col = np.fromiter(
        map(hashes.__getitem__, act_col), dtype=np.uint64, count=n
    )
    if columns.keys is not None:
        ent_col = columns.keys >> 32
    else:
        ent_col = np.array(columns.ent_col, dtype=np.int64)
    order = np.lexsort((hash_col, ent_col))
    ents = ent_col[order]
    vals = hash_col[order]
    # Drop consecutive duplicate (entity, hash) pairs, then keep only the
    # first p rows of every entity run (rows are hash-ascending per entity).
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.logical_or(ents[1:] != ents[:-1], vals[1:] != vals[:-1], out=keep[1:])
    ents = ents[keep]
    vals = vals[keep]
    m = len(ents)
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.not_equal(ents[1:], ents[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    run_lengths = np.diff(np.append(starts, m))
    rank_in_run = np.arange(m) - np.repeat(starts, run_lengths)
    selected = vals[rank_in_run < p].tolist()
    # Entity runs are eid-ascending (the lexsort's primary key), exactly the
    # order of ``segments``/``ent_strings``, so the selected values map back
    # to keywords by walking the per-run take-p counts — no id lookups.
    counts = np.minimum(run_lengths, p).tolist()
    out = {}
    pos = 0
    for kw, count in zip(columns.ent_strings, counts):
        end = pos + count
        out[kw] = tuple(selected[pos:end])
        pos = end
    return out


def sketches_share_value(sketch_a: Sketch, sketch_b: Sketch) -> bool:
    """Candidate test: do the two sketches share at least one hash value?

    Both sketches are ascending, so a linear merge suffices.
    """
    i = j = 0
    while i < len(sketch_a) and j < len(sketch_b):
        a, b = sketch_a[i], sketch_b[j]
        if a == b:
            return True
        if a < b:
            i += 1
        else:
            j += 1
    return False


def estimate_jaccard(sketch_a: Sketch, sketch_b: Sketch, p: int) -> float:
    """Bottom-p Jaccard estimate from two sketches.

    Takes the p smallest values of the union of the sketches and counts the
    fraction present in both — the standard bottom-k estimator.  Exact when
    either underlying set has at most p elements.
    """
    if not sketch_a or not sketch_b:
        return 0.0
    union_bottom = heapq.nsmallest(p, set(sketch_a) | set(sketch_b))
    if not union_bottom:
        return 0.0
    set_a, set_b = set(sketch_a), set(sketch_b)
    shared = sum(1 for v in union_bottom if v in set_a and v in set_b)
    return shared / len(union_bottom)


__all__ = [
    "MinHasher",
    "Sketch",
    "WindowedSketchIndex",
    "batched_quantum_minis",
    "sketches_share_value",
    "estimate_jaccard",
    "user_hash_fn",
]
