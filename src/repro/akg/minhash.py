"""MinHash sketches for efficient edge-candidate discovery (Section 3.2.2).

Each keyword keeps the ``p`` minimum hash values over the user ids in its
window id set.  Two keywords become an edge *candidate* when their sketches
share at least one value; the probability of the single-minimum variant
matching equals the Jaccard coefficient, and keeping p minima drives the
false-negative rate down (Cohen [6, 7]).  ``p = min(theta / 2, 1 / gamma)``
per the paper.

Hashing uses a salted 64-bit blake2b digest so results are stable across
processes and independent of ``PYTHONHASHSEED``; per-user hashes are memoised
because the same users recur across quanta.  The memo is *bounded*: the
AKG builder evicts users reported by ``SlideDelta.vanished_users`` — users
whose last window occurrence just expired — so the cache tracks the live
window population instead of every user id ever seen.
"""

from __future__ import annotations

import heapq
from collections import deque
from hashlib import blake2b
from typing import Deque, Dict, Hashable, Iterable, Mapping, Set, Tuple

from repro.errors import ConfigError

UserId = Hashable
Sketch = Tuple[int, ...]


class MinHasher:
    """Salted, memoised 64-bit user hashing + sketch construction."""

    def __init__(self, p: int, seed: int = 0) -> None:
        if p < 1:
            raise ConfigError(f"sketch size p must be >= 1, got {p}")
        self.p = p
        self._salt = seed.to_bytes(8, "little", signed=False)
        self._cache: Dict[UserId, int] = {}

    def hash_user(self, user: UserId) -> int:
        """Stable 64-bit hash of a user id (uniform over (0, 2^64))."""
        cached = self._cache.get(user)
        if cached is not None:
            return cached
        digest = blake2b(
            repr(user).encode("utf-8"), digest_size=8, salt=self._salt
        ).digest()
        value = int.from_bytes(digest, "big")
        self._cache[user] = value
        return value

    def evict(self, users: Iterable[UserId]) -> int:
        """Drop memoised hashes for users that left the window entirely.

        Fed from ``SlideDelta.vanished_users`` on every slide; hashes are a
        pure salted function of the user id, so a user who later returns is
        simply re-memoised.  Returns the number of entries removed.
        """
        removed = 0
        cache = self._cache
        for user in users:
            if cache.pop(user, None) is not None:
                removed += 1
        return removed

    def clear(self) -> None:
        """Drop the whole memo (checkpoint restore: hashes re-warm on
        demand, being pure salted functions of the user id)."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Current number of memoised user hashes (cache-bound tests)."""
        return len(self._cache)

    def sketch(self, users: Iterable[UserId]) -> Sketch:
        """The p smallest *distinct* user hashes, ascending (may be < p).

        Hash values are deduplicated before the bottom-p cut so that a
        colliding pair of users cannot occupy two sketch slots — this keeps
        a from-scratch sketch of a union of sets identical to the merge of
        the per-set sketches, which the windowed index and its oracle rely
        on.  ``p == 1`` (a common outcome of the paper's
        ``min(theta/2, 1/gamma)`` derivation) short-circuits to a plain
        ``min`` — duplicates cannot matter for a single minimum.
        """
        hashes = map(self.hash_user, users)
        if self.p == 1:
            smallest = min(hashes, default=None)
            return () if smallest is None else (smallest,)
        return tuple(heapq.nsmallest(self.p, set(hashes)))


class WindowedSketchIndex:
    """Sliding-window MinHash sketches maintained incrementally.

    The paper keeps "p Min-Hash values amongst all the user ids in the id
    set" per keyword.  Recomputing that from the full window id set every
    quantum costs O(window); instead this index stores, per keyword, a deque
    of bottom-p mini-sketches — one per quantum the keyword appeared in,
    computed once from that quantum's new users only — and merges the
    <= ``window_quanta`` mini-sketches into a cached full-window sketch.

    The merged sketch is recomputed lazily and only when *dirtied*: a
    keyword's cache entry is invalidated exactly when it gains a mini-sketch
    (it appeared this quantum) or loses one (an entry expired).  Untouched
    keywords keep serving their cached sketch, so per-quantum sketch work is
    proportional to the delta, matching the paper's real-time constraint
    (DESIGN.md Section 5).
    """

    def __init__(self, hasher: MinHasher, window_quanta: int) -> None:
        self.hasher = hasher
        self.window_quanta = window_quanta
        # keyword -> deque of (quantum, mini-sketch), oldest first
        self._minis: Dict[str, Deque[Tuple[int, Sketch]]] = {}
        # expiry schedule: (quantum, keywords that appeared then)
        self._schedule: Deque[Tuple[int, Tuple[str, ...]]] = deque()
        self._merged: Dict[str, Sketch] = {}
        self._dirty: Set[str] = set()
        self.merge_recomputes = 0
        """Number of merged-sketch rebuilds performed (work counter for the
        dirty-only regression tests and the AKG bench)."""

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[str, Iterable[UserId]]
    ) -> None:
        cutoff = quantum - self.window_quanta
        entered = []
        for kw, users in keyword_users.items():
            mini = self.hasher.sketch(users)
            if not mini:
                continue
            minis = self._minis.get(kw)
            if minis is None:
                minis = self._minis[kw] = deque()
            minis.append((quantum, mini))
            entered.append(kw)
            self._dirty.add(kw)
        if entered:
            self._schedule.append((quantum, tuple(entered)))
        while self._schedule and self._schedule[0][0] <= cutoff:
            _, kws = self._schedule.popleft()
            for kw in kws:
                minis = self._minis.get(kw)
                if minis is None:
                    continue
                while minis and minis[0][0] <= cutoff:
                    minis.popleft()
                if minis:
                    self._dirty.add(kw)
                else:
                    del self._minis[kw]
                    self._merged.pop(kw, None)
                    self._dirty.discard(kw)

    def to_state(self) -> dict:
        """Checkpointable snapshot: the per-keyword mini-sketch deques.

        The expiry schedule is derivable from the deques and the merged-
        sketch cache is a pure function of them, so neither is stored;
        :meth:`from_state` rebuilds the schedule and marks every keyword
        dirty — the first post-restore query recomputes a merge identical to
        the pre-snapshot one (the merge is exact, DESIGN.md Section 5).
        Mini-sketches are emitted in sorted keyword order so the snapshot is
        a pure function of the window contents, which makes the sharded
        front-end's merged checkpoint byte-identical to a serial one.
        """
        return {
            "minis": [
                [kw, [[q, list(mini)] for q, mini in minis]]
                for kw, minis in sorted(self._minis.items())
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the index in place from :meth:`to_state` output."""
        self._minis = {}
        by_quantum: Dict[int, list] = {}
        for kw, minis in state["minis"]:
            entries: Deque[Tuple[int, Sketch]] = deque()
            for q, mini in minis:
                entries.append((q, tuple(mini)))
                by_quantum.setdefault(q, []).append(kw)
            self._minis[kw] = entries
        self._schedule = deque(
            (q, tuple(sorted(by_quantum[q]))) for q in sorted(by_quantum)
        )
        self._merged = {}
        self._dirty = set(self._minis)
        self.merge_recomputes = 0

    def sketch(self, keyword: str) -> Sketch:
        """Bottom-p hash values of the keyword's window id set (cached)."""
        minis = self._minis.get(keyword)
        if minis is None:
            return ()
        if keyword not in self._dirty:
            cached = self._merged.get(keyword)
            if cached is not None:
                return cached
        values: set = set()
        for _, mini in minis:
            values.update(mini)
        if len(values) <= self.hasher.p:
            merged = tuple(sorted(values))
        else:
            merged = tuple(heapq.nsmallest(self.hasher.p, values))
        self._merged[keyword] = merged
        self._dirty.discard(keyword)
        self.merge_recomputes += 1
        return merged


def sketches_share_value(sketch_a: Sketch, sketch_b: Sketch) -> bool:
    """Candidate test: do the two sketches share at least one hash value?

    Both sketches are ascending, so a linear merge suffices.
    """
    i = j = 0
    while i < len(sketch_a) and j < len(sketch_b):
        a, b = sketch_a[i], sketch_b[j]
        if a == b:
            return True
        if a < b:
            i += 1
        else:
            j += 1
    return False


def estimate_jaccard(sketch_a: Sketch, sketch_b: Sketch, p: int) -> float:
    """Bottom-p Jaccard estimate from two sketches.

    Takes the p smallest values of the union of the sketches and counts the
    fraction present in both — the standard bottom-k estimator.  Exact when
    either underlying set has at most p elements.
    """
    if not sketch_a or not sketch_b:
        return 0.0
    union_bottom = heapq.nsmallest(p, set(sketch_a) | set(sketch_b))
    if not union_bottom:
        return 0.0
    set_a, set_b = set(sketch_a), set(sketch_b)
    shared = sum(1 for v in union_bottom if v in set_a and v in set_b)
    return shared / len(union_bottom)


__all__ = [
    "MinHasher",
    "Sketch",
    "WindowedSketchIndex",
    "sketches_share_value",
    "estimate_jaccard",
]
