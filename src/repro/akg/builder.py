"""Per-quantum AKG maintenance (Section 3) driving cluster maintenance.

For every quantum the builder:

1. advances the sliding id-set index (Section 3.2);
2. runs the burstiness automaton; newly bursty keywords enter the AKG
   (Section 3.1);
3. computes new-edge candidates **only among keywords bursty in this
   quantum** (the paper's set (1), Section 3.2.1), optionally pre-filtered by
   MinHash sketch collisions (Section 3.2.2), and inserts edges whose exact
   EC clears gamma;
4. lazily refreshes the EC of edges incident to keywords that appeared in
   this quantum (the paper's set (2)); edges falling below gamma are deleted;
5. removes stale nodes (absent from the whole window) and lazily drops
   non-clustered nodes whose burst has aged past the grace period.

Every insertion/deletion flows through the
:class:`~repro.core.maintenance.ClusterMaintainer`, which keeps the SCP
cluster decomposition exact at all times — this is what makes discovery
*real-time* rather than snapshot-based.

Churn proportionality (DESIGN.md Section 5): every step above is driven by
the quantum's *delta sets*, never the window vocabulary.  The id-set slide
reports a :class:`~repro.akg.idsets.SlideDelta`; burstiness advances only
touched keywords; sketches are merged only when dirtied; and step 5 checks
only three delta-sized candidate pools — keywords whose support just hit
zero (stale), keywords whose burst grace period expires this quantum
(scheduled at burst time), and nodes that just lost their last cluster
membership (registry listener).  ``oracle=True`` swaps in the from-scratch
components of :mod:`repro.akg.oracle` and a full-vocabulary dead-node sweep:
identical semantics, O(window x vocabulary) cost, used as the differential
baseline by the property tests and ``benchmarks/bench_incremental_akg.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Mapping, Set, Tuple

from repro.akg.burstiness import BurstinessTracker
from repro.akg.idsets import IdSetIndex, SlideDelta, make_batched_idsets
from repro.akg.minhash import (
    MinHasher,
    Sketch,
    WindowedSketchIndex,
    batched_quantum_minis,
)
from repro.akg.oracle import OracleIdSetIndex, OracleSketchIndex
from repro.config import DetectorConfig
from repro.core.changelog import NodeWeightChanged
from repro.core.maintenance import ClusterMaintainer
from repro.errors import GraphError

if TYPE_CHECKING:
    from repro.stream.window import QuantumColumns

Keyword = str
UserId = Hashable


# --------------------------------------------------------------------------
# Shared update primitives.
#
# Every cross-keyword step of the per-quantum update — candidate pairing,
# new-edge qualification, incident-edge refresh, the dead-node predicate —
# is a pure function of (graph, thresholds) plus two keyword-indexed
# oracles: a sketch lookup and an exact-EC lookup.  The serial builder binds
# them to its own window indexes; the keyword-range-sharded front-end
# (:mod:`repro.parallel`) binds them to data gathered from its shard
# workers.  Both paths therefore execute *identical* candidate, insertion,
# refresh and removal sequences, which is what makes the sharded pipeline
# bit-identical to the serial one for any worker count (DESIGN.md S7).


def minhash_candidate_pairs(
    bursty: List[Keyword], sketch_of
) -> List[Tuple[Keyword, Keyword]]:
    """Pairs of bursty keywords whose sketches share a hash value.

    Bucketing by sketch value finds exactly the colliding pairs without
    comparing all O(B^2) combinations.  Output is sorted, so it depends only
    on the sketches, not on bucket iteration order.
    """
    sketches: Dict[Keyword, Sketch] = {kw: sketch_of(kw) for kw in bursty}
    buckets: Dict[int, List[Keyword]] = {}
    for kw, sketch in sketches.items():
        for value in sketch:
            buckets.setdefault(value, []).append(kw)
    seen: Set[Tuple[Keyword, Keyword]] = set()
    for members in buckets.values():
        if len(members) < 2:
            continue
        members.sort()
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                seen.add((members[i], members[j]))
    return sorted(seen)


def candidate_edge_pairs(
    bursty: List[Keyword], use_minhash: bool, sketch_of
) -> Iterable[Tuple[Keyword, Keyword]]:
    """The quantum's new-edge candidate pairs, in deterministic order.

    ``bursty`` must be sorted; the exact (non-MinHash) variant enumerates
    every pair in that order, matching the paper's ablation baseline.
    """
    if use_minhash:
        return minhash_candidate_pairs(bursty, sketch_of)
    return (
        (bursty[i], bursty[j])
        for i in range(len(bursty))
        for j in range(i + 1, len(bursty))
    )


def qualify_new_edges(
    pairs: Iterable[Tuple[Keyword, Keyword]],
    graph,
    gamma: float,
    jaccard,
    stats: "AkgQuantumStats",
) -> List[Tuple[Keyword, Keyword, float]]:
    """EC-qualify candidate pairs against the live graph (paper set (1))."""
    out: List[Tuple[Keyword, Keyword, float]] = []
    for kw1, kw2 in pairs:
        stats.candidate_pairs += 1
        if graph.has_edge(kw1, kw2):
            continue
        stats.ec_computations += 1
        ec = jaccard(kw1, kw2)
        if ec >= gamma:
            out.append((kw1, kw2, ec))
    return out


def refresh_incident_edges(
    active_keywords: Iterable[Keyword],
    maintainer: ClusterMaintainer,
    gamma: float,
    jaccard,
    stats: "AkgQuantumStats",
) -> None:
    """Recompute EC of edges touching keywords seen this quantum.

    This is the paper's set (2): only nodes occurring in the current
    quantum (and, through these edges, their neighbours) can change
    correlation, so no other edge needs to be revisited.
    """
    graph = maintainer.graph
    to_check: Set[Tuple[Keyword, Keyword]] = set()
    for kw in active_keywords:
        if not graph.has_node(kw):
            continue
        for nbr in graph.neighbors(kw):
            to_check.add((kw, nbr) if kw <= nbr else (nbr, kw))
    to_remove: List[Tuple[Keyword, Keyword]] = []
    for kw1, kw2 in sorted(to_check):
        stats.ec_computations += 1
        ec = jaccard(kw1, kw2)
        if ec < gamma:
            to_remove.append((kw1, kw2))
            stats.edges_removed += 1
        else:
            maintainer.set_edge_weight(kw1, kw2, ec)
            stats.edges_refreshed += 1
    if to_remove:
        maintainer.remove_edges(to_remove)


def drain_removal_candidates(
    quantum: int,
    emptied: Iterable[Keyword],
    grace_deadlines: Dict[int, Set[Keyword]],
) -> Set[Keyword]:
    """The delta-sized pool of nodes that *could* die this quantum.

    Completeness argument (DESIGN.md Section 5): a node is removed when
    (a) its window support is zero — support reaches zero exactly in the
    slide that expires its last entry, so ``emptied`` covers it; or (b) it
    is unclustered and its last burst aged past the grace period — which
    first becomes true either at the burst's scheduled deadline (popped
    from ``grace_deadlines`` here, due entries consumed) or, if it was
    clustered then, at the later quantum where it loses its last membership
    (the registry listener pool, which the caller unions in).  Any node
    outside these pools fails the removal predicate for the same reason it
    did last quantum.  Shared by the serial builder and the sharded
    front-end so both drain the identical pool.
    """
    due: Set[Keyword] = set(emptied)
    for deadline in [q for q in grace_deadlines if q <= quantum]:
        due |= grace_deadlines.pop(deadline)
    return due


def select_dead_nodes(
    candidates: Iterable[Keyword],
    maintainer: ClusterMaintainer,
    support_of,
    aged_out,
    stats: "AkgQuantumStats",
) -> Tuple[List[Keyword], List[Keyword]]:
    """Evaluate the Section 3.1 removal predicate over a candidate pool.

    Returns ``(stale, lazy)`` in the deterministic sorted-candidate order
    the maintainer will apply them in.  ``support_of``/``aged_out`` are the
    two window queries of the predicate; the serial builder answers them
    from its own indexes, the sharded front-end from its mirrors.
    """
    graph = maintainer.graph
    registry = maintainer.registry
    stale: List[Keyword] = []
    lazy: List[Keyword] = []
    for kw in sorted(candidates):
        if not graph.has_node(kw):
            continue
        stats.removal_candidates += 1
        if support_of(kw) == 0:
            stale.append(kw)
            continue
        if registry.clusters_of_node(kw):
            continue
        if aged_out(kw):
            lazy.append(kw)
    return stale, lazy


@dataclass
class AkgQuantumStats:
    """Work and size counters for one quantum (feeds Section 7.4)."""

    quantum: int = 0
    bursty_keywords: int = 0
    nodes_added: int = 0
    nodes_removed_stale: int = 0
    nodes_removed_lazy: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    edges_refreshed: int = 0
    node_weight_deltas: int = 0
    candidate_pairs: int = 0
    ec_computations: int = 0
    removal_candidates: int = 0
    akg_nodes: int = 0
    akg_edges: int = 0


class AkgBuilder:
    """Maintains the active keyword graph over a sliding window.

    ``oracle=True`` replaces the incremental window indexes with the
    from-scratch implementations of :mod:`repro.akg.oracle` and sweeps the
    whole graph for dead nodes each quantum — the verification baseline for
    the fast path (``EventDetector(oracle_akg=True)``, ``detect
    --oracle-akg``).
    """

    def __init__(
        self,
        config: DetectorConfig,
        maintainer: ClusterMaintainer,
        oracle: bool = False,
    ) -> None:
        self.config = config
        self.maintainer = maintainer
        self.oracle = oracle
        self.minhasher = MinHasher(config.effective_minhash_size, seed=config.seed)
        if oracle:
            self.idsets = OracleIdSetIndex(config.window_quanta)
            self.sketches = OracleSketchIndex(self.minhasher, self.idsets)
        else:
            self.idsets = IdSetIndex(config.window_quanta)
            self.sketches = WindowedSketchIndex(
                self.minhasher, config.window_quanta
            )
        self.burstiness = BurstinessTracker(config.high_state_threshold)
        # Lazy-removal schedule: quantum -> keywords whose grace period can
        # first be exceeded then.  Armed on every burst; checked when due.
        self._grace_deadlines: Dict[int, Set[Keyword]] = {}
        # Nodes that lost their last cluster membership since the previous
        # step-5 pass (registry listener; hints only, re-verified on use).
        self._newly_unclustered: Set[Keyword] = set()
        if not oracle:
            maintainer.registry.add_unclustered_listener(
                self._on_node_unclustered
            )

    def _on_node_unclustered(self, node: Keyword) -> None:
        self._newly_unclustered.add(node)

    # ----------------------------------------------------------- main loop

    def process_quantum(
        self, quantum: int, keyword_users: Mapping[Keyword, Set[UserId]]
    ) -> AkgQuantumStats:
        """Apply one quantum of stream content to the AKG.

        ``keyword_users`` maps every (stop-word-free) keyword appearing in
        the quantum to the distinct users who used it.
        """
        stats = AkgQuantumStats(quantum=quantum)
        graph = self.maintainer.graph
        self.maintainer.current_quantum = quantum

        delta = self.idsets.add_quantum(quantum, keyword_users)
        # Users whose last window occurrence just expired can never be
        # re-hashed from cache state alone — drop their memo entries so the
        # MinHasher cache tracks the live window population (bounded memo).
        if delta.vanished_users:
            self.minhasher.evict(delta.vanished_users)
        # Node-weight deltas feed the incremental ranker.  Only nodes already
        # in the AKG matter: a keyword entering the graph (and a cluster)
        # later this quantum is covered by that cluster's structural event.
        changelog = self.maintainer.changelog
        for kw, (old, new) in delta.support_deltas.items():
            if graph.has_node(kw):
                changelog.record(NodeWeightChanged(kw, old, new))
                stats.node_weight_deltas += 1
        if self.config.use_minhash_filter:
            self.sketches.add_quantum(quantum, keyword_users)
        quantum_support = {kw: len(users) for kw, users in keyword_users.items()}
        bursty = self.burstiness.observe_quantum(quantum, quantum_support)
        stats.bursty_keywords = len(bursty)

        # -- nodes: newly bursty keywords enter the AKG -------------------
        grace = self.config.node_grace_quanta
        for kw in bursty:
            if not graph.has_node(kw):
                self.maintainer.add_node(kw)
                stats.nodes_added += 1
            if not self.oracle:
                deadline = self.burstiness.first_droppable_quantum(kw, grace)
                self._grace_deadlines.setdefault(deadline, set()).add(kw)

        # -- edges: new candidates among this quantum's bursty set --------
        new_edges = self._new_edges_among(sorted(bursty), stats)
        for kw1, kw2, ec in new_edges:
            self.maintainer.add_edge(kw1, kw2, ec)
            stats.edges_added += 1

        # -- edges: lazy refresh around keywords seen this quantum --------
        self._refresh_incident_edges(keyword_users.keys(), stats)

        # -- nodes: stale and lazy removal --------------------------------
        self._remove_dead_nodes(quantum, delta, stats)

        stats.akg_nodes = graph.num_nodes
        stats.akg_edges = graph.num_edges
        return stats

    # ------------------------------------------------------------ helpers

    def _new_edges_among(
        self, bursty: List[Keyword], stats: AkgQuantumStats
    ) -> List[Tuple[Keyword, Keyword, float]]:
        """EC-qualified new edges among the quantum's bursty keywords."""
        pairs = candidate_edge_pairs(
            bursty, self.config.use_minhash_filter, self.sketches.sketch
        )
        return qualify_new_edges(
            pairs,
            self.maintainer.graph,
            self.config.ec_threshold,
            self.idsets.jaccard,
            stats,
        )

    def _refresh_incident_edges(
        self, active_keywords: Iterable[Keyword], stats: AkgQuantumStats
    ) -> None:
        """Recompute EC of edges touching keywords seen this quantum."""
        refresh_incident_edges(
            active_keywords,
            self.maintainer,
            self.config.ec_threshold,
            self.idsets.jaccard,
            stats,
        )

    # ------------------------------------------------------- dead-node pass

    def _removal_candidates(
        self, quantum: int, delta: SlideDelta
    ) -> Iterable[Keyword]:
        """The delta-sized candidate pool (see :func:`drain_removal_candidates`)
        plus the registry's newly-unclustered hints."""
        due = drain_removal_candidates(
            quantum, delta.emptied, self._grace_deadlines
        )
        due |= self._newly_unclustered
        self._newly_unclustered = set()
        return due

    def _remove_dead_nodes(
        self, quantum: int, delta: SlideDelta, stats: AkgQuantumStats
    ) -> None:
        """Stale removal plus the lazy-update drop of Section 3.1.

        Stale: the keyword did not occur in any of the last w quanta (its
        window id set is empty).  Lazy: the keyword is in no cluster and its
        last burst is older than the grace period — it can only re-enter the
        AKG by bursting again, exactly the hysteresis the paper describes.

        The oracle sweeps every graph node; the fast path evaluates the same
        predicate over the delta-sized candidate pool only.
        """
        grace = self.config.node_grace_quanta
        if self.oracle:
            candidates: Iterable[Keyword] = self.maintainer.graph.nodes()
        else:
            candidates = self._removal_candidates(quantum, delta)
        stale, lazy = select_dead_nodes(
            candidates,
            self.maintainer,
            self.idsets.support,
            lambda kw: self.burstiness.aged_out(kw, quantum, grace),
            stats,
        )
        stats.nodes_removed_stale = len(stale)
        stats.nodes_removed_lazy = len(lazy)
        if stale or lazy:
            self.maintainer.remove_nodes(stale + lazy)
            self.burstiness.forget(stale + lazy)

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot of the AKG stage's window bookkeeping.

        Composes the child components' states (id sets, sketches, burstiness
        automaton) with the builder's own lazy-removal schedule.  The
        MinHasher's memo cache is deliberately excluded: hashes are a pure
        salted function of the user id and re-memoise on demand.
        """
        return {
            "oracle": self.oracle,
            "idsets": self.idsets.to_state(),
            "sketches": self.sketches.to_state(),
            "burstiness": self.burstiness.to_state(),
            "grace_deadlines": [
                [deadline, sorted(kws)]
                for deadline, kws in sorted(self._grace_deadlines.items())
            ],
            "newly_unclustered": sorted(self._newly_unclustered),
        }

    def from_state(self, state: dict) -> None:
        """Restore the AKG stage in place from :meth:`to_state` output.

        The builder must have been constructed with the same ``oracle``
        flag the snapshot was taken under — the two modes keep differently
        shaped window state.
        """
        if state["oracle"] != self.oracle:
            raise GraphError(
                f"checkpoint was taken with oracle={state['oracle']}, "
                f"builder runs with oracle={self.oracle}"
            )
        self.idsets.from_state(state["idsets"])
        self.sketches.from_state(state["sketches"])
        self.burstiness.from_state(state["burstiness"])
        self._grace_deadlines = {
            deadline: set(kws) for deadline, kws in state["grace_deadlines"]
        }
        self._newly_unclustered = set(state["newly_unclustered"])

    # ------------------------------------------------------------- access

    def node_weights(self, nodes: Iterable[Keyword]) -> Dict[Keyword, int]:
        """Window support of each node — the W vector of the rank function."""
        return {kw: self.idsets.support(kw) for kw in nodes}


class BatchedAkgBuilder(AkgBuilder):
    """The batched-backend builder (DESIGN.md Section 9).

    Swaps the window id-set index for a batched engine (interned
    ids, flat pair counts) and adds :meth:`process_columns`, which consumes
    the batched extraction stage's pre-interned
    :class:`~repro.stream.window.QuantumColumns` directly — per-quantum
    sketch minima come from one vectorized pass over the quantum's hash
    column instead of one salted blake2b call per (keyword, user).

    Every cross-keyword decision step (burstiness, candidate pairing, EC
    qualification, refresh, removal) is the *same code* as the reference
    builder over the same values, so reports, sink events, histories and
    checkpoints are bit-identical across backends.  The inherited
    mapping-path :meth:`process_quantum` keeps working too (the batched
    index accepts the reference ``add_quantum`` contract), which is what
    lets CKG-stats sessions run this builder behind the reference stages.
    """

    def __init__(
        self, config: DetectorConfig, maintainer: ClusterMaintainer
    ) -> None:
        super().__init__(config, maintainer, oracle=False)
        self.idsets = make_batched_idsets(config.window_quanta, seed=config.seed)

    def process_columns(
        self, quantum: int, columns: "QuantumColumns"
    ) -> AkgQuantumStats:
        """Apply one quantum of pre-interned pair columns to the AKG.

        Mirrors :meth:`AkgBuilder.process_quantum` step for step; only the
        window-index feed differs (columns instead of a mapping, vectorized
        per-quantum minima instead of per-keyword ``hasher.sketch`` calls).
        """
        stats = AkgQuantumStats(quantum=quantum)
        graph = self.maintainer.graph
        self.maintainer.current_quantum = quantum

        delta = self.idsets.add_columns(quantum, columns)
        # Vanished users already released their interner slot (and with it
        # the memoised base hash) inside add_columns — the batched analogue
        # of the reference path's MinHasher memo eviction.  The memo itself
        # is only populated if this builder also served mapping-path quanta.
        if delta.vanished_users and self.minhasher.cache_size:
            self.minhasher.evict(delta.vanished_users)
        changelog = self.maintainer.changelog
        for kw, (old, new) in delta.support_deltas.items():
            if graph.has_node(kw):
                changelog.record(NodeWeightChanged(kw, old, new))
                stats.node_weight_deltas += 1
        if self.config.use_minhash_filter:
            minis = batched_quantum_minis(
                columns, self.idsets.acts.hashes, self.minhasher.p
            )
            self.sketches.add_quantum_minis(quantum, minis)
        segments = columns.segments
        ent_strings = columns.ent_strings
        quantum_support = {
            kw: seg[2] - seg[1] for seg, kw in zip(segments, ent_strings)
        }
        bursty = self.burstiness.observe_quantum(quantum, quantum_support)
        stats.bursty_keywords = len(bursty)

        # -- nodes: newly bursty keywords enter the AKG -------------------
        grace = self.config.node_grace_quanta
        for kw in bursty:
            if not graph.has_node(kw):
                self.maintainer.add_node(kw)
                stats.nodes_added += 1
            deadline = self.burstiness.first_droppable_quantum(kw, grace)
            self._grace_deadlines.setdefault(deadline, set()).add(kw)

        # -- edges: new candidates among this quantum's bursty set --------
        new_edges = self._new_edges_among(sorted(bursty), stats)
        for kw1, kw2, ec in new_edges:
            self.maintainer.add_edge(kw1, kw2, ec)
            stats.edges_added += 1

        # -- edges: lazy refresh around keywords seen this quantum --------
        self._refresh_incident_edges(ent_strings, stats)

        # -- nodes: stale and lazy removal --------------------------------
        self._remove_dead_nodes(quantum, delta, stats)

        stats.akg_nodes = graph.num_nodes
        stats.akg_edges = graph.num_edges
        return stats


__all__ = [
    "AkgBuilder",
    "AkgQuantumStats",
    "BatchedAkgBuilder",
    "candidate_edge_pairs",
    "drain_removal_candidates",
    "minhash_candidate_pairs",
    "qualify_new_edges",
    "refresh_incident_edges",
    "select_dead_nodes",
]
