"""Edge correlation measures (Section 3.2).

The edge correlation (EC) of two keywords is the Jaccard coefficient of
their window user-id sets.  User ids — not message ids — are used so that a
single user flooding identical messages cannot inflate correlation.
"""

from __future__ import annotations

from typing import AbstractSet, Hashable

UserId = Hashable


def exact_jaccard(set_a: AbstractSet[UserId], set_b: AbstractSet[UserId]) -> float:
    """|A n B| / |A u B|; 0.0 when both sets are empty."""
    if not set_a or not set_b:
        return 0.0
    if len(set_a) > len(set_b):
        set_a, set_b = set_b, set_a
    intersection = sum(1 for item in set_a if item in set_b)
    union = len(set_a) + len(set_b) - intersection
    return intersection / union if union else 0.0


__all__ = ["exact_jaccard"]
