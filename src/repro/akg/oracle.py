"""From-scratch AKG state for differential verification (DESIGN.md Section 5).

The fast AKG path (:mod:`repro.akg.idsets`, :mod:`repro.akg.minhash`, the
delta-driven :class:`repro.akg.builder.AkgBuilder`) earns its
churn-proportional cost through incremental bookkeeping: per-keyword deques,
cached merged sketches, scheduled removal checks.  Each of those shortcuts is
a correctness risk.  This module provides the slow, obviously-correct
counterparts — every quantum they recompute window state from the raw
retained quanta, sweeping the full vocabulary — while implementing *exactly
the same update semantics*.  Running the builder over them
(``AkgBuilder(config, maintainer, oracle=True)``) therefore yields a
reference AKG that the property tests and ``bench_incremental_akg`` compare
against the fast path, graph for graph, EC for EC, change event for change
event.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Set, Tuple

from repro.akg.idsets import SlideDelta
from repro.akg.minhash import MinHasher, Sketch
from repro.errors import StreamError

Keyword = str
UserId = Hashable


class OracleIdSetIndex:
    """Window id sets recomputed from the raw quantum log on every slide.

    Interface-compatible with :class:`repro.akg.idsets.IdSetIndex`; every
    :meth:`add_quantum` rebuilds the per-keyword user sets from scratch over
    the retained quanta and derives the :class:`SlideDelta` by diffing the
    full before/after support maps — O(window x vocabulary) work, which is
    the point: no incremental state exists to go stale.
    """

    def __init__(self, window_quanta: int) -> None:
        if window_quanta < 1:
            raise StreamError(f"window_quanta must be >= 1, got {window_quanta}")
        self.window_quanta = window_quanta
        self._window: List[Tuple[int, Dict[Keyword, FrozenSet[UserId]]]] = []
        self._sets: Dict[Keyword, Set[UserId]] = {}
        self._last_quantum: int | None = None

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[Keyword, Set[UserId]]
    ) -> SlideDelta:
        if self._last_quantum is not None and quantum <= self._last_quantum:
            raise StreamError(
                f"quanta must be added in increasing order: got {quantum} "
                f"after {self._last_quantum}"
            )
        self._last_quantum = quantum
        old_support = {kw: len(users) for kw, users in self._sets.items()}
        old_users: Set[UserId] = set()
        for users in self._sets.values():
            old_users |= users
        frozen = {
            kw: frozenset(users) for kw, users in keyword_users.items() if users
        }
        cutoff = quantum - self.window_quanta
        self._window.append((quantum, frozen))
        expired: Set[Keyword] = set()
        live: List[Tuple[int, Dict[Keyword, FrozenSet[UserId]]]] = []
        for q, content in self._window:
            if q <= cutoff:
                expired.update(content)
            else:
                live.append((q, content))
        self._window = live
        sets: Dict[Keyword, Set[UserId]] = {}
        for _, content in self._window:
            for kw, users in content.items():
                sets.setdefault(kw, set()).update(users)
        self._sets = sets
        support_deltas = {
            kw: (old_support.get(kw, 0), len(sets.get(kw, ())))
            for kw in set(old_support) | set(sets)
            if old_support.get(kw, 0) != len(sets.get(kw, ()))
        }
        emptied = frozenset(
            kw for kw, (_, new) in support_deltas.items() if new == 0
        )
        new_users: Set[UserId] = set()
        for users in sets.values():
            new_users |= users
        return SlideDelta(
            quantum=quantum,
            appeared=frozenset(frozen),
            expired=frozenset(expired),
            support_deltas=support_deltas,
            emptied=emptied,
            vanished_users=frozenset(old_users - new_users),
        )

    def window_users(self) -> Set[UserId]:
        """Every user present in at least one window id set (from scratch)."""
        out: Set[UserId] = set()
        for users in self._sets.values():
            out |= users
        return out

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot: the raw retained quanta."""
        return {
            "last_quantum": self._last_quantum,
            "window": [
                [
                    q,
                    [
                        [kw, sorted(users, key=repr)]
                        for kw, users in sorted(content.items())
                    ],
                ]
                for q, content in self._window
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the index in place from :meth:`to_state` output."""
        self._last_quantum = state["last_quantum"]
        self._window = [
            (q, {kw: frozenset(users) for kw, users in content})
            for q, content in state["window"]
        ]
        sets: Dict[Keyword, Set[UserId]] = {}
        for _, content in self._window:
            for kw, users in content.items():
                sets.setdefault(kw, set()).update(users)
        self._sets = sets

    # ------------------------------------------------------------- queries

    def __contains__(self, keyword: Keyword) -> bool:
        return keyword in self._sets

    def keywords(self) -> Iterable[Keyword]:
        return self._sets.keys()

    @property
    def num_keywords(self) -> int:
        return len(self._sets)

    def users(self, keyword: Keyword) -> Set[UserId]:
        return set(self._sets.get(keyword, ()))

    def support(self, keyword: Keyword) -> int:
        return len(self._sets.get(keyword, ()))

    def jaccard(self, kw1: Keyword, kw2: Keyword) -> float:
        s1 = self._sets.get(kw1)
        s2 = self._sets.get(kw2)
        if not s1 or not s2:
            return 0.0
        intersection = len(s1 & s2)
        union = len(s1) + len(s2) - intersection
        return intersection / union if union else 0.0


class OracleSketchIndex:
    """Sketches recomputed from the full window id set on every query.

    Interface-compatible with
    :class:`repro.akg.minhash.WindowedSketchIndex`, but stateless: it reads
    the id-set index it is given and hashes the complete id set per query.
    The windowed index's mini-sketch merge is exact (bottom-p of a union
    equals bottom-p of the union of per-part bottom-p's), so the two must
    agree value for value.
    """

    def __init__(self, hasher: MinHasher, idsets: OracleIdSetIndex) -> None:
        self.hasher = hasher
        self._idsets = idsets

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[Keyword, Iterable[UserId]]
    ) -> None:
        """No-op: the oracle recomputes from the id sets on demand."""

    def sketch(self, keyword: Keyword) -> Sketch:
        return self.hasher.sketch(self._idsets.users(keyword))

    def to_state(self) -> dict:
        """No state of its own: sketches derive from the id-set index."""
        return {}

    def from_state(self, state: dict) -> None:
        """No-op counterpart of :meth:`to_state`."""


__all__ = ["OracleIdSetIndex", "OracleSketchIndex"]
