"""AKG construction: reducing the CKG to its active subgraph (Section 3).

* :mod:`repro.akg.idsets` — sliding-window per-keyword user-id sets (the "id
  set" of Section 3.2) with O(1) amortized quantum advance;
* :mod:`repro.akg.burstiness` — the two-state low/high keyword automaton with
  high-state threshold theta (Section 3.1);
* :mod:`repro.akg.minhash` — p-minimum MinHash sketches used to find edge
  candidates without all-pairs EC computation (Section 3.2.2);
* :mod:`repro.akg.correlation` — Jaccard edge correlation, exact and
  sketch-estimated;
* :mod:`repro.akg.builder` — the per-quantum pipeline that applies node and
  edge deltas to a :class:`~repro.core.maintenance.ClusterMaintainer`;
* :mod:`repro.akg.oracle` — from-scratch window-state recomputation, the
  differential-verification baseline of the delta-driven fast path;
* :mod:`repro.akg.ckg_stats` — optional full-CKG counters for the Section
  7.4 reduction study.
"""

from repro.akg.idsets import IdSetIndex, SlideDelta
from repro.akg.burstiness import BurstinessTracker
from repro.akg.minhash import MinHasher, estimate_jaccard, sketches_share_value
from repro.akg.correlation import exact_jaccard
from repro.akg.builder import AkgBuilder, AkgQuantumStats
from repro.akg.oracle import OracleIdSetIndex, OracleSketchIndex
from repro.akg.ckg_stats import CkgStatsTracker

__all__ = [
    "IdSetIndex",
    "SlideDelta",
    "OracleIdSetIndex",
    "OracleSketchIndex",
    "BurstinessTracker",
    "MinHasher",
    "estimate_jaccard",
    "sketches_share_value",
    "exact_jaccard",
    "AkgBuilder",
    "AkgQuantumStats",
    "CkgStatsTracker",
]
