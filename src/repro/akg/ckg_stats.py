"""Full-CKG counters for the Section 7.4 reduction study.

The point of the AKG is that the full correlated keyword graph is never
materialised.  To *measure* the reduction (AKG edges < 2% of CKG edges,
< 5% of nodes bursty), this tracker maintains the CKG's node and edge counts
over the sliding window without building an adjacency structure: it keeps a
multiset of co-occurring keyword pairs per quantum and subtracts expired
quanta.  It is optional (``DetectorConfig.track_ckg_stats``) because the
pair multiset is exactly the cost the AKG avoids.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, Hashable, Iterable, Mapping, Set, Tuple

Keyword = str
UserId = Hashable


class CkgStatsTracker:
    """Sliding-window CKG node/edge counts (no adjacency materialised)."""

    def __init__(self, window_quanta: int, max_pairs_per_user: int = 400) -> None:
        self.window_quanta = window_quanta
        self.max_pairs_per_user = max_pairs_per_user
        self._window: Deque[Tuple[int, Counter]] = deque()
        self._pair_counts: Counter = Counter()
        self._node_window: Deque[Tuple[int, Set[Keyword]]] = deque()
        self._node_counts: Counter = Counter()
        self.truncated_users = 0

    def add_quantum(
        self, quantum: int, user_keywords: Mapping[UserId, Set[Keyword]]
    ) -> None:
        """Ingest one quantum's per-user keyword sets.

        A CKG edge exists between two keywords iff some user used both within
        one quantum; the per-user pair expansion is capped (and counted) so a
        pathological flooder cannot blow up memory.
        """
        pairs: Counter = Counter()
        nodes: Set[Keyword] = set()
        for keywords in user_keywords.values():
            ordered = sorted(keywords)
            nodes.update(ordered)
            budget = self.max_pairs_per_user
            emitted = 0
            for i in range(len(ordered)):
                if emitted >= budget:
                    break
                for j in range(i + 1, len(ordered)):
                    pairs[(ordered[i], ordered[j])] += 1
                    emitted += 1
                    if emitted >= budget:
                        self.truncated_users += 1
                        break
        self._window.append((quantum, pairs))
        self._pair_counts.update(pairs)
        self._node_window.append((quantum, nodes))
        self._node_counts.update(nodes)
        while self._window and self._window[0][0] <= quantum - self.window_quanta:
            _, old_pairs = self._window.popleft()
            self._pair_counts.subtract(old_pairs)
            self._pair_counts += Counter()  # drop non-positive entries
            _, old_nodes = self._node_window.popleft()
            self._node_counts.subtract(old_nodes)
            self._node_counts += Counter()

    def to_state(self) -> dict:
        """Checkpointable snapshot: the retained per-quantum windows.

        The aggregate counters are exactly the sum of the live windows, so
        only the windows (plus the truncation counter) are stored.
        """
        return {
            "truncated_users": self.truncated_users,
            "pair_window": [
                [q, [[list(pair), n] for pair, n in sorted(pairs.items())]]
                for q, pairs in self._window
            ],
            "node_window": [
                [q, sorted(nodes)] for q, nodes in self._node_window
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the tracker in place from :meth:`to_state` output."""
        self.truncated_users = state["truncated_users"]
        self._window = deque(
            (q, Counter({tuple(pair): n for pair, n in pairs}))
            for q, pairs in state["pair_window"]
        )
        self._node_window = deque(
            (q, set(nodes)) for q, nodes in state["node_window"]
        )
        self._pair_counts = Counter()
        for _, pairs in self._window:
            self._pair_counts.update(pairs)
        self._node_counts = Counter()
        for _, nodes in self._node_window:
            self._node_counts.update(nodes)

    @property
    def ckg_nodes(self) -> int:
        return len(self._node_counts)

    @property
    def ckg_edges(self) -> int:
        return len(self._pair_counts)

    def reduction_ratios(self, akg_nodes: int, akg_edges: int) -> Dict[str, float]:
        """AKG / CKG size ratios (the Section 7.4 headline numbers)."""
        return {
            "node_ratio": akg_nodes / self.ckg_nodes if self.ckg_nodes else 0.0,
            "edge_ratio": akg_edges / self.ckg_edges if self.ckg_edges else 0.0,
        }


__all__ = ["CkgStatsTracker"]
