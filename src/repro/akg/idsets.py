"""Sliding-window id sets: which users used which keyword, per window.

Section 3.2 associates with every keyword the set of user ids that used it in
the current window; the Jaccard coefficient of two keywords' id sets is the
edge correlation.  This index maintains those sets incrementally as the
window slides: each quantum contributes a per-keyword user set, and sets older
than ``window_quanta`` are subtracted again.

Multiplicities are tracked per (keyword, user) so that a user who used a
keyword in several quanta stays in the id set until the *last* of those
quanta expires.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, Hashable, Iterable, Mapping, Set, Tuple

from repro.errors import StreamError

Keyword = str
UserId = Hashable


class IdSetIndex:
    """Per-keyword sliding-window user-id sets with O(changes) updates."""

    def __init__(self, window_quanta: int) -> None:
        if window_quanta < 1:
            raise StreamError(f"window_quanta must be >= 1, got {window_quanta}")
        self.window_quanta = window_quanta
        self._window: Deque[Tuple[int, Dict[Keyword, frozenset]]] = deque()
        self._counts: Dict[Keyword, Counter] = {}

    # ------------------------------------------------------------- updates

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[Keyword, Set[UserId]]
    ) -> Dict[Keyword, Tuple[int, int]]:
        """Ingest one quantum's keyword -> users mapping and expire old ones.

        Quanta must be added in increasing order.  Returns the support
        deltas this slide caused, as ``keyword -> (old, new)`` for every
        keyword whose window support actually changed — the node-weight
        change feed of the incremental ranking pipeline.  Only keywords in
        the entering quantum or in expiring ones can move, so computing the
        deltas is O(changes), never O(window).
        """
        if self._window and quantum <= self._window[-1][0]:
            raise StreamError(
                f"quanta must be added in increasing order: got {quantum} "
                f"after {self._window[-1][0]}"
            )
        # Empty user sets are skipped: they carry no id-set information and
        # would otherwise leave dangling empty counters behind.
        frozen = {
            kw: frozenset(users) for kw, users in keyword_users.items() if users
        }
        touched: Set[Keyword] = set(frozen)
        for old_quantum, old in self._window:  # ordered by quantum ascending
            if old_quantum > quantum - self.window_quanta:
                break  # nothing further expires this slide
            touched.update(old)
        before = {kw: self.support(kw) for kw in touched}
        self._window.append((quantum, frozen))
        for kw, users in frozen.items():
            counter = self._counts.get(kw)
            if counter is None:
                counter = self._counts[kw] = Counter()
            counter.update(users)
        while self._window and self._window[0][0] <= quantum - self.window_quanta:
            _, old = self._window.popleft()
            for kw, users in old.items():
                counter = self._counts.get(kw)
                if counter is None:
                    continue
                counter.subtract(users)
                for user in users:
                    if counter[user] <= 0:
                        del counter[user]
                if not counter:
                    del self._counts[kw]
        return {
            kw: (old_support, new_support)
            for kw, old_support in before.items()
            if (new_support := self.support(kw)) != old_support
        }

    # ------------------------------------------------------------- queries

    def __contains__(self, keyword: Keyword) -> bool:
        return keyword in self._counts

    def keywords(self) -> Iterable[Keyword]:
        """Every keyword with at least one occurrence in the window."""
        return self._counts.keys()

    @property
    def num_keywords(self) -> int:
        return len(self._counts)

    def users(self, keyword: Keyword) -> Set[UserId]:
        """The id set: distinct users of ``keyword`` in the window."""
        counter = self._counts.get(keyword)
        return set(counter) if counter else set()

    def support(self, keyword: Keyword) -> int:
        """|id set| — the node weight ``w_i`` of the ranking function."""
        counter = self._counts.get(keyword)
        return len(counter) if counter else 0

    def jaccard(self, kw1: Keyword, kw2: Keyword) -> float:
        """Exact edge correlation |U1 n U2| / |U1 u U2| (Section 3.2)."""
        c1 = self._counts.get(kw1)
        c2 = self._counts.get(kw2)
        if not c1 or not c2:
            return 0.0
        intersection = len(c1.keys() & c2.keys())
        union = len(c1) + len(c2) - intersection
        return intersection / union if union else 0.0


__all__ = ["IdSetIndex"]
