"""Sliding-window id sets: which users used which keyword, per window.

Section 3.2 associates with every keyword the set of user ids that used it in
the current window; the Jaccard coefficient of two keywords' id sets is the
edge correlation.  This index maintains those sets incrementally as the
window slides: each quantum contributes a per-keyword user set, and sets older
than ``window_quanta`` are subtracted again.

Multiplicities are tracked per (keyword, user) so that a user who used a
keyword in several quanta stays in the id set until the *last* of those
quanta expires.

Churn proportionality (DESIGN.md Section 5): every keyword owns its own deque
of ``(quantum, users)`` entries, and a global appearance schedule records
which keywords contributed to each quantum.  A slide therefore touches only
the keywords that appeared in the entering quantum plus the keywords whose
entries expire — never the full vocabulary — and reports exactly that delta
as a :class:`SlideDelta` so downstream stages can stay delta-driven too.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Set,
    Tuple,
)

from repro.akg.minhash import user_hash_fn
from repro.arrays import get_numpy
from repro.errors import StreamError
from repro.interning import Interner

if TYPE_CHECKING:
    from repro.stream.window import QuantumColumns

Keyword = str
UserId = Hashable


@dataclass(frozen=True, slots=True)
class SlideDelta:
    """Everything one window slide changed — the AKG stage's delta contract.

    ``appeared``
        keywords with a non-empty user set in the entering quantum;
    ``expired``
        keywords that lost at least one window entry to expiry this slide;
    ``support_deltas``
        ``keyword -> (old, new)`` for every keyword whose window support
        (distinct-user count) actually moved;
    ``emptied``
        keywords whose support dropped to zero this slide — the complete set
        of stale-node candidates, because a keyword's support can only reach
        zero in the slide that expires its last entry.
    ``vanished_users``
        user ids that left *every* keyword's window id set this slide — the
        complete eviction pool for per-user memo caches (the MinHasher's
        hash memo), because a user's last window occurrence can only expire
        in one slide.

    Every field is computable in O(appeared + expired); nothing here is ever
    proportional to the window vocabulary.
    """

    quantum: int
    appeared: FrozenSet[Keyword] = frozenset()
    expired: FrozenSet[Keyword] = frozenset()
    support_deltas: Mapping[Keyword, Tuple[int, int]] = field(
        default_factory=dict
    )
    emptied: FrozenSet[Keyword] = frozenset()
    vanished_users: FrozenSet[UserId] = frozenset()

    @property
    def touched(self) -> FrozenSet[Keyword]:
        """Keywords whose window id set may have changed this slide."""
        return self.appeared | self.expired


class IdSetIndex:
    """Per-keyword sliding-window user-id sets with O(changes) updates."""

    __slots__ = (
        "window_quanta",
        "_entries",
        "_schedule",
        "_counts",
        "_user_counts",
        "_last_quantum",
    )

    def __init__(self, window_quanta: int) -> None:
        if window_quanta < 1:
            raise StreamError(f"window_quanta must be >= 1, got {window_quanta}")
        self.window_quanta = window_quanta
        # keyword -> deque of (quantum, frozenset of users), oldest first
        self._entries: Dict[Keyword, Deque[Tuple[int, FrozenSet[UserId]]]] = {}
        # expiry schedule: (quantum, keywords that appeared then), oldest first
        self._schedule: Deque[Tuple[int, Tuple[Keyword, ...]]] = deque()
        self._counts: Dict[Keyword, Counter] = {}
        # user -> total multiplicity across every live (keyword, quantum)
        # entry; a user whose count reaches zero has left the whole window,
        # which is what feeds SlideDelta.vanished_users.
        self._user_counts: Counter = Counter()
        self._last_quantum: int | None = None

    # ------------------------------------------------------------- updates

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[Keyword, Set[UserId]]
    ) -> SlideDelta:
        """Ingest one quantum's keyword -> users mapping and expire old ones.

        Quanta must be added in increasing order.  Returns the
        :class:`SlideDelta` of the slide; work is O(appeared + expired),
        never O(window vocabulary).
        """
        if self._last_quantum is not None and quantum <= self._last_quantum:
            raise StreamError(
                f"quanta must be added in increasing order: got {quantum} "
                f"after {self._last_quantum}"
            )
        self._last_quantum = quantum
        cutoff = quantum - self.window_quanta
        # Empty user sets are skipped: they carry no id-set information and
        # would otherwise leave dangling empty entries behind.
        frozen = {
            kw: frozenset(users) for kw, users in keyword_users.items() if users
        }
        appeared = set(frozen)
        expired: Set[Keyword] = set()
        while self._schedule and self._schedule[0][0] <= cutoff:
            _, kws = self._schedule.popleft()
            expired.update(kws)
        touched = appeared | expired
        counts = self._counts
        before = {
            kw: len(counter) if (counter := counts.get(kw)) else 0
            for kw in touched
        }

        user_counts = self._user_counts
        for kw, users in frozen.items():
            entries = self._entries.get(kw)
            if entries is None:
                entries = self._entries[kw] = deque()
            entries.append((quantum, users))
            counter = counts.get(kw)
            if counter is None:
                counter = counts[kw] = Counter()
            counter.update(users)
            user_counts.update(users)
        if frozen:
            self._schedule.append((quantum, tuple(frozen)))

        vanished: Set[UserId] = set()
        for kw in expired:
            entries = self._entries.get(kw)
            if entries is None:
                continue
            counter = counts[kw]
            while entries and entries[0][0] <= cutoff:
                _, users = entries.popleft()
                for user in users:
                    remaining = counter[user] - 1
                    if remaining:
                        counter[user] = remaining
                    else:
                        del counter[user]
                    total = user_counts[user] - 1
                    if total:
                        user_counts[user] = total
                    else:
                        del user_counts[user]
                        vanished.add(user)
            if not entries:
                del self._entries[kw]
            if not counter:
                del counts[kw]

        support_deltas = {
            kw: (old_support, new_support)
            for kw, old_support in before.items()
            if (
                new_support := len(counter)
                if (counter := counts.get(kw))
                else 0
            )
            != old_support
        }
        emptied = frozenset(
            kw
            for kw, (old_support, new_support) in support_deltas.items()
            if new_support == 0
        )
        return SlideDelta(
            quantum=quantum,
            appeared=frozenset(appeared),
            expired=frozenset(expired),
            support_deltas=support_deltas,
            emptied=emptied,
            vanished_users=frozenset(vanished),
        )

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot: the per-keyword window entries.

        The multiplicity counters and the expiry schedule are derivable from
        the entries, so only the entries (plus the slide cursor) are stored;
        :meth:`from_state` rebuilds the rest deterministically.  Entries are
        emitted in sorted keyword order so the snapshot is a pure function of
        the window *contents* — the keyword-range-sharded front-end relies on
        this to make its merged checkpoint byte-identical to a serial one
        (DESIGN.md Section 7).
        """
        return {
            "last_quantum": self._last_quantum,
            "entries": [
                [kw, [[q, sorted(users, key=repr)] for q, users in entries]]
                for kw, entries in sorted(self._entries.items())
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the index in place from :meth:`to_state` output."""
        self._last_quantum = state["last_quantum"]
        self._entries = {}
        self._counts = {}
        self._user_counts = Counter()
        by_quantum: Dict[int, list] = {}
        for kw, entries in state["entries"]:
            deque_entries: Deque[Tuple[int, FrozenSet[UserId]]] = deque()
            counter: Counter = Counter()
            for q, users in entries:
                frozen = frozenset(users)
                deque_entries.append((q, frozen))
                counter.update(frozen)
                self._user_counts.update(frozen)
                by_quantum.setdefault(q, []).append(kw)
            self._entries[kw] = deque_entries
            self._counts[kw] = counter
        self._schedule = deque(
            (q, tuple(sorted(by_quantum[q]))) for q in sorted(by_quantum)
        )

    # ------------------------------------------------------------- queries

    def __contains__(self, keyword: Keyword) -> bool:
        return keyword in self._counts

    def keywords(self) -> Iterable[Keyword]:
        """Every keyword with at least one occurrence in the window."""
        return self._counts.keys()

    @property
    def num_keywords(self) -> int:
        return len(self._counts)

    def entries(self, keyword: Keyword) -> Tuple[Tuple[int, FrozenSet[UserId]], ...]:
        """The keyword's live (quantum, users) window entries, oldest first.

        Exposed for the leak tests: a keyword must never hold two entries for
        the same quantum, even when it expires and re-enters in one slide.
        """
        return tuple(self._entries.get(keyword, ()))

    def users(self, keyword: Keyword) -> Set[UserId]:
        """The id set: distinct users of ``keyword`` in the window."""
        counter = self._counts.get(keyword)
        return set(counter) if counter else set()

    def id_set(self, keyword: Keyword) -> FrozenSet[UserId]:
        """The id set as an immutable, shippable frozenset (one copy).

        The sharded front-end's exchange uses this instead of
        ``frozenset(users(kw))``, which would copy twice.
        """
        counter = self._counts.get(keyword)
        return frozenset(counter) if counter else frozenset()

    def support(self, keyword: Keyword) -> int:
        """|id set| — the node weight ``w_i`` of the ranking function."""
        counter = self._counts.get(keyword)
        return len(counter) if counter else 0

    def window_users(self) -> Set[UserId]:
        """Every user present in at least one keyword's window id set.

        The exact live set behind ``SlideDelta.vanished_users``; the MinHash
        cache-bound tests assert the hash memo never outgrows it.
        """
        return set(self._user_counts)

    def jaccard(self, kw1: Keyword, kw2: Keyword) -> float:
        """Exact edge correlation |U1 n U2| / |U1 u U2| (Section 3.2)."""
        c1 = self._counts.get(kw1)
        c2 = self._counts.get(kw2)
        if not c1 or not c2:
            return 0.0
        intersection = len(c1.keys() & c2.keys())
        union = len(c1) + len(c2) - intersection
        return intersection / union if union else 0.0


class BatchedIdSetIndex:
    """Interned, array-backed sliding-window id sets (DESIGN.md Section 9).

    Same contract as :class:`IdSetIndex` — identical :class:`SlideDelta`
    output, identical queries, byte-identical ``to_state()`` — but the
    internal bookkeeping runs on dense interner ids instead of Python
    objects:

    * keywords and users live in two :class:`~repro.interning.Interner`
      tables; the actor table also stores each user's 64-bit MinHash base
      hash, computed once per window residency;
    * a window entry is a tuple of actor ids (no frozensets of objects);
    * per-(keyword, user) multiplicities are one flat dict keyed by the
      packed int ``(eid << 32) | aid`` instead of a Counter per keyword;
    * each keyword's distinct id set is a set of ints, so edge-correlation
      intersections hash machine ints, not strings.

    Ids are recycled: a user reported in ``vanished_users`` releases their
    interner slot (the analogue of the reference MinHasher memo eviction),
    and a keyword whose window emptied releases its entity slot, so both id
    spaces track the live window population.

    :meth:`add_columns` is the batched entry point — it consumes the
    extraction stage's :class:`~repro.stream.window.QuantumColumns`
    directly; :meth:`add_quantum` adapts the reference mapping contract by
    interning it first, so the two indexes are drop-in interchangeable.
    """

    __slots__ = (
        "window_quanta",
        "ents",
        "acts",
        "_entries",
        "_schedule",
        "_pair_counts",
        "_distinct",
        "_user_counts",
        "_last_quantum",
    )

    def __init__(self, window_quanta: int, seed: int = 0) -> None:
        if window_quanta < 1:
            raise StreamError(f"window_quanta must be >= 1, got {window_quanta}")
        self.window_quanta = window_quanta
        self.ents = Interner()
        self.acts = Interner(hash_fn=user_hash_fn(seed))
        # eid -> deque of (quantum, tuple of aids), oldest first
        self._entries: Dict[int, Deque[Tuple[int, Tuple[int, ...]]]] = {}
        # expiry schedule: (quantum, eids that appeared then), oldest first
        self._schedule: Deque[Tuple[int, Tuple[int, ...]]] = deque()
        # (eid << 32) | aid -> live multiplicity across window entries
        self._pair_counts: Dict[int, int] = {}
        # eid -> distinct aids in the window (the id set, as ints)
        self._distinct: Dict[int, Set[int]] = {}
        # aid -> total multiplicity across every live (keyword, quantum)
        # entry; zero means the user left the whole window (vanished).
        self._user_counts: Dict[int, int] = {}
        self._last_quantum: int | None = None

    # ------------------------------------------------------------- updates

    def _check_order(self, quantum: int) -> None:
        if self._last_quantum is not None and quantum <= self._last_quantum:
            raise StreamError(
                f"quanta must be added in increasing order: got {quantum} "
                f"after {self._last_quantum}"
            )

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[Keyword, Set[UserId]]
    ) -> SlideDelta:
        """Reference-contract entry point: intern the mapping, then slide.

        Order is validated *before* interning so a rejected call leaves the
        interner tables untouched (no orphan ids behind a StreamError).
        """
        from repro.stream.window import columns_from_mapping

        self._check_order(quantum)
        columns = columns_from_mapping(keyword_users, self.ents, self.acts)
        return self.add_columns(quantum, columns)

    def add_columns(
        self, quantum: int, columns: "QuantumColumns"
    ) -> SlideDelta:
        """Ingest one quantum's interned pair columns and expire old entries.

        The batched slide: one pass over the entering deduplicated pairs,
        one pass over the expiring entries, every transition (support move,
        emptied keyword, vanished user) read off integer count edges.
        Work is O(entering pairs + expiring pairs) — identical asymptotics
        to the reference index, a fraction of its constant factor.
        """
        self._check_order(quantum)
        self._last_quantum = quantum
        cutoff = quantum - self.window_quanta
        segments = columns.segments
        expired_eids: Set[int] = set()
        while self._schedule and self._schedule[0][0] <= cutoff:
            _, eids = self._schedule.popleft()
            expired_eids.update(eids)

        distinct = self._distinct
        before: Dict[int, int] = {}
        for eid, _, _ in segments:
            dset = distinct.get(eid)
            before[eid] = len(dset) if dset else 0
        for eid in expired_eids:
            if eid not in before:
                dset = distinct.get(eid)
                before[eid] = len(dset) if dset else 0

        # -- entering quantum ---------------------------------------------
        pair_counts = self._pair_counts
        user_counts = self._user_counts
        entries_map = self._entries
        act_col = columns.act_col
        for eid, lo, hi in segments:
            entry = tuple(act_col[lo:hi])
            entries = entries_map.get(eid)
            if entries is None:
                entries = entries_map[eid] = deque()
            entries.append((quantum, entry))
            dset = distinct.get(eid)
            if dset is None:
                dset = distinct[eid] = set()
            base = eid << 32
            for aid in entry:
                key = base | aid
                count = pair_counts.get(key)
                if count is None:
                    pair_counts[key] = 1
                    dset.add(aid)
                else:
                    pair_counts[key] = count + 1
                total = user_counts.get(aid)
                user_counts[aid] = 1 if total is None else total + 1
        if segments:
            self._schedule.append(
                (quantum, tuple(eid for eid, _, _ in segments))
            )

        # -- expiring entries ---------------------------------------------
        vanished_aids: List[int] = []
        freed_eids: List[int] = []
        for eid in expired_eids:
            entries = entries_map.get(eid)
            if entries is None:
                continue
            dset = distinct[eid]
            base = eid << 32
            while entries and entries[0][0] <= cutoff:
                _, entry = entries.popleft()
                for aid in entry:
                    key = base | aid
                    count = pair_counts[key] - 1
                    if count:
                        pair_counts[key] = count
                    else:
                        del pair_counts[key]
                        dset.remove(aid)
                    total = user_counts[aid] - 1
                    if total:
                        user_counts[aid] = total
                    else:
                        del user_counts[aid]
                        vanished_aids.append(aid)
            if not entries:
                del entries_map[eid]
            if not dset:
                del distinct[eid]
                freed_eids.append(eid)

        # -- delta (resolved to objects *before* releasing slots) ---------
        ent_objs = self.ents.objs
        act_objs = self.acts.objs
        support_deltas: Dict[Keyword, Tuple[int, int]] = {}
        emptied: List[Keyword] = []
        for eid, old_support in before.items():
            dset = distinct.get(eid)
            new_support = len(dset) if dset else 0
            if new_support != old_support:
                kw = ent_objs[eid]
                support_deltas[kw] = (old_support, new_support)
                if new_support == 0:
                    emptied.append(kw)
        delta = SlideDelta(
            quantum=quantum,
            appeared=frozenset(columns.ent_strings),
            expired=frozenset(ent_objs[eid] for eid in expired_eids),
            support_deltas=support_deltas,
            emptied=frozenset(emptied),
            vanished_users=frozenset(act_objs[aid] for aid in vanished_aids),
        )
        if vanished_aids:
            self.acts.release(vanished_aids)
        if freed_eids:
            self.ents.release(freed_eids)
        return delta

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot — byte-identical to :class:`IdSetIndex`.

        Interner ids are execution-internal: entries resolve back to the
        original keyword/user objects and sort exactly as the reference
        index sorts, so a batched session's checkpoint is indistinguishable
        from a reference one at the same stream position (the Section 9
        checkpoint-identity contract).
        """
        ent_objs = self.ents.objs
        act_objs = self.acts.objs
        return {
            "last_quantum": self._last_quantum,
            "entries": [
                [
                    kw,
                    [
                        [q, sorted((act_objs[a] for a in entry), key=repr)]
                        for q, entry in entries
                    ],
                ]
                for kw, entries in sorted(
                    (ent_objs[eid], entries)
                    for eid, entries in self._entries.items()
                )
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the index in place from :meth:`to_state` output.

        Accepts reference-index snapshots too (the layouts are identical),
        which is what lets a checkpoint taken under one backend resume
        under the other.
        """
        self._last_quantum = state["last_quantum"]
        # Clear the interner tables *in place*: the batched extract stage
        # holds references to these same objects (shared id space), so
        # replacing them here would silently fork the interning.
        self.ents.clear()
        self.acts.clear()
        self._entries = {}
        self._pair_counts = {}
        self._distinct = {}
        self._user_counts = {}
        pair_counts = self._pair_counts
        user_counts = self._user_counts
        by_quantum: Dict[int, List[int]] = {}
        for kw, entries in state["entries"]:
            eid = self.ents.intern(kw)
            deque_entries: Deque[Tuple[int, Tuple[int, ...]]] = deque()
            dset = self._distinct.setdefault(eid, set())
            base = eid << 32
            for q, users in entries:
                entry = tuple(self.acts.intern(u) for u in users)
                deque_entries.append((q, entry))
                by_quantum.setdefault(q, []).append(eid)
                for aid in entry:
                    key = base | aid
                    pair_counts[key] = pair_counts.get(key, 0) + 1
                    dset.add(aid)
                    user_counts[aid] = user_counts.get(aid, 0) + 1
            self._entries[eid] = deque_entries
        self._schedule = deque(
            (q, tuple(by_quantum[q])) for q in sorted(by_quantum)
        )

    # ------------------------------------------------------------- queries

    def __contains__(self, keyword: Keyword) -> bool:
        return keyword in self.ents.ids

    def keywords(self) -> Iterable[Keyword]:
        """Every keyword with at least one occurrence in the window."""
        ent_objs = self.ents.objs
        return [ent_objs[eid] for eid in self._distinct]

    @property
    def num_keywords(self) -> int:
        return len(self._distinct)

    def entries(
        self, keyword: Keyword
    ) -> Tuple[Tuple[int, FrozenSet[UserId]], ...]:
        """The keyword's live (quantum, users) window entries, oldest first."""
        eid = self.ents.ids.get(keyword)
        if eid is None:
            return ()
        act_objs = self.acts.objs
        return tuple(
            (q, frozenset(act_objs[a] for a in entry))
            for q, entry in self._entries.get(eid, ())
        )

    def users(self, keyword: Keyword) -> Set[UserId]:
        """The id set: distinct users of ``keyword`` in the window."""
        eid = self.ents.ids.get(keyword)
        if eid is None:
            return set()
        act_objs = self.acts.objs
        return {act_objs[a] for a in self._distinct[eid]}

    def id_set(self, keyword: Keyword) -> FrozenSet[UserId]:
        """The id set as an immutable frozenset of the original user ids."""
        eid = self.ents.ids.get(keyword)
        if eid is None:
            return frozenset()
        act_objs = self.acts.objs
        return frozenset(act_objs[a] for a in self._distinct[eid])

    def support(self, keyword: Keyword) -> int:
        """|id set| — the node weight ``w_i`` of the ranking function."""
        eid = self.ents.ids.get(keyword)
        if eid is None:
            return 0
        return len(self._distinct[eid])

    def window_users(self) -> Set[UserId]:
        """Every user present in at least one keyword's window id set."""
        act_objs = self.acts.objs
        return {act_objs[a] for a in self._user_counts}

    def jaccard(self, kw1: Keyword, kw2: Keyword) -> float:
        """Exact edge correlation over the interned id sets.

        Set intersection over machine ints — the same cardinalities as the
        reference object-set intersection, so the same exact float.
        """
        ids = self.ents.ids
        eid1 = ids.get(kw1)
        eid2 = ids.get(kw2)
        if eid1 is None or eid2 is None:
            return 0.0
        s1 = self._distinct[eid1]
        s2 = self._distinct[eid2]
        intersection = len(s1 & s2)
        union = len(s1) + len(s2) - intersection
        return intersection / union if union else 0.0


class ArrayIdSetIndex(BatchedIdSetIndex):
    """The numpy engine behind the batched backend's window id sets.

    Same contract as :class:`BatchedIdSetIndex` (itself contract-identical
    to :class:`IdSetIndex`), but the window state is four sorted int64
    arrays instead of dict-of-deque bookkeeping:

    * ``_pair_keys`` — the packed ``(eid << 32) | aid`` key of every live
      *distinct* (keyword, user) pair, sorted ascending, with the live
      multiplicity of each pair in the parallel ``_pair_cnt``;
    * ``_aid_keys`` / ``_aid_cnt`` — per-user total multiplicities across
      the whole window (the vanished-user detector);
    * ``_quanta`` — a deque of ``(quantum, keys)`` packed columns, oldest
      first, holding each quantum's contribution verbatim (these are the
      extraction stage's own key arrays, kept by reference — they are
      never mutated).

    A slide is then pure array algebra: ``searchsorted`` locates the
    entering and expiring pairs, fancy-indexed adds/subtracts move the
    multiplicities (entering keys are distinct per quantum and expiring
    keys are uniqued first, so positions never repeat within one update),
    ``np.insert``/boolean masks grow and shrink the key columns, and a
    keyword's window support is just the length of its contiguous key
    slice.  Because both engines deal in the same distinct-pair
    multiset, every SlideDelta field, query result, and ``to_state()``
    byte is identical; the differential tests drive them in lockstep.

    Safe id recycling is inherited from the shared-interner scheme: a slot
    is only released when its last window occurrence expires, at which
    point no array in ``_quanta`` can still reference it.
    """

    __slots__ = (
        "_np",
        "_quanta",
        "_pair_keys",
        "_pair_cnt",
        "_aid_keys",
        "_aid_cnt",
        "_num_eids",
        "_set_cache",
    )

    def __init__(self, window_quanta: int, seed: int = 0) -> None:
        super().__init__(window_quanta, seed)
        np = get_numpy()
        if np is None:
            raise StreamError(
                "ArrayIdSetIndex requires numpy; use BatchedIdSetIndex "
                "(or make_batched_idsets) for the pure-python engine"
            )
        self._np = np
        # (quantum, packed int64 keys) — oldest first, keys sorted/distinct
        self._quanta: Deque[Tuple[int, object]] = deque()
        self._pair_keys = np.empty(0, dtype=np.int64)
        self._pair_cnt = np.empty(0, dtype=np.int64)
        self._aid_keys = np.empty(0, dtype=np.int64)
        self._aid_cnt = np.empty(0, dtype=np.int64)
        self._num_eids = 0
        # eid -> masked sorted aid column, valid for the current window
        # position only (cleared on every slide); feeds the per-quantum
        # edge-correlation burst, where the same keyword's id set is
        # intersected against many partners.
        self._set_cache: Dict[int, object] = {}

    # ------------------------------------------------------------- updates

    def add_columns(
        self, quantum: int, columns: "QuantumColumns"
    ) -> SlideDelta:
        """One window slide as array algebra (see class docstring)."""
        self._check_order(quantum)
        self._last_quantum = quantum
        np = self._np
        if self._set_cache:
            self._set_cache = {}
        cutoff = quantum - self.window_quanta
        K_in = columns.key_array() if columns.num_pairs else None

        # -- which quanta leave the window --------------------------------
        expiring: List[object] = []
        while self._quanta and self._quanta[0][0] <= cutoff:
            expiring.append(self._quanta.popleft()[1])
        if K_in is not None:
            self._quanta.append((quantum, K_in))
        if expiring:
            K_out = (
                expiring[0]
                if len(expiring) == 1
                else np.sort(np.concatenate(expiring))
            )
            out_eids = np.unique(K_out >> 32)
        else:
            K_out = None
            out_eids = np.empty(0, dtype=np.int64)

        # -- before-supports over every touched keyword -------------------
        segments = columns.segments
        if segments:
            in_eids = np.fromiter(
                (s[0] for s in segments), dtype=np.int64, count=len(segments)
            )
            touched = (
                np.union1d(in_eids, out_eids) if len(out_eids) else in_eids
            )
        else:
            touched = out_eids
        pair_keys = self._pair_keys
        lo_bounds = touched << 32
        hi_bounds = lo_bounds | 0xFFFFFFFF
        before = np.searchsorted(pair_keys, hi_bounds, side="right")
        before -= np.searchsorted(pair_keys, lo_bounds)

        # -- entering quantum ---------------------------------------------
        if K_in is not None:
            pos = np.searchsorted(pair_keys, K_in)
            found = np.zeros(len(K_in), dtype=bool)
            valid = pos < len(pair_keys)
            found[valid] = pair_keys[pos[valid]] == K_in[valid]
            # K_in is distinct, so found positions never repeat: a plain
            # fancy-indexed increment is exact (no ufunc.at needed).
            self._pair_cnt[pos[found]] += 1
            miss = ~found
            if miss.any():
                new_keys = K_in[miss]
                where = pos[miss]
                pair_keys = np.insert(pair_keys, where, new_keys)
                self._pair_keys = pair_keys
                self._pair_cnt = np.insert(self._pair_cnt, where, 1)
            aids_in, cnt_in = np.unique(
                K_in & 0xFFFFFFFF, return_counts=True
            )
            apos = np.searchsorted(self._aid_keys, aids_in)
            afound = np.zeros(len(aids_in), dtype=bool)
            avalid = apos < len(self._aid_keys)
            afound[avalid] = self._aid_keys[apos[avalid]] == aids_in[avalid]
            self._aid_cnt[apos[afound]] += cnt_in[afound]
            amiss = ~afound
            if amiss.any():
                self._aid_keys = np.insert(
                    self._aid_keys, apos[amiss], aids_in[amiss]
                )
                self._aid_cnt = np.insert(
                    self._aid_cnt, apos[amiss], cnt_in[amiss]
                )

        # -- expiring quanta ----------------------------------------------
        vanished_aids: List[int] = []
        if K_out is not None:
            # A pair can recur across several expiring quanta only when the
            # quantum counter jumped; unique-with-counts folds that into one
            # exact subtraction per distinct key.
            k_u, k_c = np.unique(K_out, return_counts=True)
            pos = np.searchsorted(pair_keys, k_u)
            self._pair_cnt[pos] -= k_c
            dead = self._pair_cnt == 0
            if dead.any():
                keep = ~dead
                pair_keys = pair_keys[keep]
                self._pair_keys = pair_keys
                self._pair_cnt = self._pair_cnt[keep]
            aids_out, cnt_out = np.unique(
                K_out & 0xFFFFFFFF, return_counts=True
            )
            apos = np.searchsorted(self._aid_keys, aids_out)
            self._aid_cnt[apos] -= cnt_out
            van = self._aid_cnt[apos] == 0
            if van.any():
                akeep = np.ones(len(self._aid_keys), dtype=bool)
                akeep[apos[van]] = False
                self._aid_keys = self._aid_keys[akeep]
                self._aid_cnt = self._aid_cnt[akeep]
                vanished_aids = aids_out[van].tolist()

        # -- after-supports and the delta ---------------------------------
        after = np.searchsorted(pair_keys, hi_bounds, side="right")
        after -= np.searchsorted(pair_keys, lo_bounds)
        changed = np.flatnonzero(after != before)
        ent_objs = self.ents.objs
        act_objs = self.acts.objs
        support_deltas: Dict[Keyword, Tuple[int, int]] = {}
        emptied: List[Keyword] = []
        freed_eids: List[int] = []
        if len(changed):
            t_list = touched[changed].tolist()
            b_list = before[changed].tolist()
            a_list = after[changed].tolist()
            for eid, old_support, new_support in zip(t_list, b_list, a_list):
                kw = ent_objs[eid]
                support_deltas[kw] = (old_support, new_support)
                if new_support == 0:
                    emptied.append(kw)
                    freed_eids.append(eid)
                elif old_support == 0:
                    self._num_eids += 1
            self._num_eids -= len(freed_eids)
        delta = SlideDelta(
            quantum=quantum,
            appeared=frozenset(columns.ent_strings),
            expired=frozenset(ent_objs[eid] for eid in out_eids.tolist()),
            support_deltas=support_deltas,
            emptied=frozenset(emptied),
            vanished_users=frozenset(act_objs[aid] for aid in vanished_aids),
        )
        if vanished_aids:
            self.acts.release(vanished_aids)
        if freed_eids:
            self.ents.release(freed_eids)
        return delta

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Decode the packed columns back to the reference snapshot layout."""
        np = self._np
        ent_objs = self.ents.objs
        act_objs = self.acts.objs
        by_eid: Dict[int, List[list]] = {}
        for q, keys in self._quanta:
            eids = keys >> 32
            bounds = np.flatnonzero(eids[1:] != eids[:-1]) + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [len(keys)]))
            aids = keys & 0xFFFFFFFF
            for eid, lo, hi in zip(
                eids[starts].tolist(), starts.tolist(), ends.tolist()
            ):
                users = sorted(
                    (act_objs[a] for a in aids[lo:hi].tolist()), key=repr
                )
                by_eid.setdefault(eid, []).append([q, users])
        return {
            "last_quantum": self._last_quantum,
            "entries": [
                [kw, entries]
                for kw, entries in sorted(
                    (ent_objs[eid], entries)
                    for eid, entries in by_eid.items()
                )
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the packed columns from a reference-layout snapshot."""
        np = self._np
        self._last_quantum = state["last_quantum"]
        self._set_cache = {}
        # In-place clear: the batched extract stage shares these interners.
        self.ents.clear()
        self.acts.clear()
        act_ids = self.acts.ids
        act_intern = self.acts.intern
        by_quantum: Dict[int, List[int]] = {}
        for kw, entries in state["entries"]:
            base = self.ents.intern(kw) << 32
            for q, users in entries:
                packed = by_quantum.setdefault(q, [])
                for user in users:
                    aid = act_ids.get(user)
                    if aid is None:
                        aid = act_intern(user)
                    packed.append(base | aid)
        self._quanta = deque()
        columns: List[object] = []
        for q in sorted(by_quantum):
            keys = np.sort(np.array(by_quantum[q], dtype=np.int64))
            self._quanta.append((q, keys))
            columns.append(keys)
        if columns:
            cat = np.concatenate(columns)
            self._pair_keys, self._pair_cnt = np.unique(
                cat, return_counts=True
            )
            self._aid_keys, self._aid_cnt = np.unique(
                cat & 0xFFFFFFFF, return_counts=True
            )
            self._num_eids = len(np.unique(self._pair_keys >> 32))
        else:
            self._pair_keys = np.empty(0, dtype=np.int64)
            self._pair_cnt = np.empty(0, dtype=np.int64)
            self._aid_keys = np.empty(0, dtype=np.int64)
            self._aid_cnt = np.empty(0, dtype=np.int64)
            self._num_eids = 0

    # ------------------------------------------------------------- queries

    def _eid_slice(self, eid: int) -> Tuple[int, int]:
        np = self._np
        base = eid << 32
        lo = int(np.searchsorted(self._pair_keys, base))
        hi = int(
            np.searchsorted(self._pair_keys, base | 0xFFFFFFFF, side="right")
        )
        return lo, hi

    def keywords(self) -> Iterable[Keyword]:
        """Every keyword with at least one occurrence in the window."""
        np = self._np
        ent_objs = self.ents.objs
        return [
            ent_objs[eid]
            for eid in np.unique(self._pair_keys >> 32).tolist()
        ]

    @property
    def num_keywords(self) -> int:
        return self._num_eids

    def entries(
        self, keyword: Keyword
    ) -> Tuple[Tuple[int, FrozenSet[UserId]], ...]:
        """The keyword's live (quantum, users) window entries, oldest first."""
        eid = self.ents.ids.get(keyword)
        if eid is None:
            return ()
        np = self._np
        act_objs = self.acts.objs
        base = eid << 32
        hi_key = base | 0xFFFFFFFF
        out = []
        for q, keys in self._quanta:
            lo = np.searchsorted(keys, base)
            hi = np.searchsorted(keys, hi_key, side="right")
            if hi > lo:
                out.append(
                    (
                        q,
                        frozenset(
                            act_objs[a]
                            for a in (keys[lo:hi] & 0xFFFFFFFF).tolist()
                        ),
                    )
                )
        return tuple(out)

    def users(self, keyword: Keyword) -> Set[UserId]:
        """The id set: distinct users of ``keyword`` in the window."""
        eid = self.ents.ids.get(keyword)
        if eid is None:
            return set()
        lo, hi = self._eid_slice(eid)
        act_objs = self.acts.objs
        return {
            act_objs[a]
            for a in (self._pair_keys[lo:hi] & 0xFFFFFFFF).tolist()
        }

    def id_set(self, keyword: Keyword) -> FrozenSet[UserId]:
        """The id set as an immutable frozenset of the original user ids."""
        eid = self.ents.ids.get(keyword)
        if eid is None:
            return frozenset()
        lo, hi = self._eid_slice(eid)
        act_objs = self.acts.objs
        return frozenset(
            act_objs[a]
            for a in (self._pair_keys[lo:hi] & 0xFFFFFFFF).tolist()
        )

    def support(self, keyword: Keyword) -> int:
        """|id set| — one slice length off the sorted key column."""
        eid = self.ents.ids.get(keyword)
        if eid is None:
            return 0
        lo, hi = self._eid_slice(eid)
        return hi - lo

    def window_users(self) -> Set[UserId]:
        """Every user present in at least one keyword's window id set."""
        act_objs = self.acts.objs
        return {act_objs[a] for a in self._aid_keys.tolist()}

    def _aid_set(self, eid: int) -> frozenset:
        """The keyword's window aid set, memoized per slide.

        The edge-correlation burst intersects the *same* keyword's id set
        against many partners within one quantum; decoding the key slice to
        a Python set once keeps each pair test a single C-level
        ``len(a & b)`` — faster than a vectorized merge at window-set sizes
        because it avoids per-call ufunc dispatch overhead.
        """
        cached = self._set_cache.get(eid)
        if cached is None:
            lo, hi = self._eid_slice(eid)
            cached = frozenset(
                (self._pair_keys[lo:hi] & 0xFFFFFFFF).tolist()
            )
            self._set_cache[eid] = cached
        return cached

    def jaccard(self, kw1: Keyword, kw2: Keyword) -> float:
        """Exact edge correlation by intersecting two window aid sets.

        Cardinalities are exact integers either way, so the quotient is the
        same float the reference object-set intersection produces.
        """
        ids = self.ents.ids
        eid1 = ids.get(kw1)
        eid2 = ids.get(kw2)
        if eid1 is None or eid2 is None:
            return 0.0
        a = self._aid_set(eid1)
        b = self._aid_set(eid2)
        intersection = len(a & b)
        union = len(a) + len(b) - intersection
        return intersection / union if union else 0.0


def make_batched_idsets(
    window_quanta: int, seed: int = 0
) -> BatchedIdSetIndex:
    """The batched backend's engine factory: numpy when available.

    Both engines are contract-identical (deltas, queries, snapshots), so
    this is a pure performance decision taken once at construction time;
    ``REPRO_PURE_PYTHON=1`` forces the dict engine.
    """
    if get_numpy() is None:
        return BatchedIdSetIndex(window_quanta, seed)
    return ArrayIdSetIndex(window_quanta, seed)


__all__ = [
    "ArrayIdSetIndex",
    "BatchedIdSetIndex",
    "IdSetIndex",
    "SlideDelta",
    "make_batched_idsets",
]
