"""Sliding-window id sets: which users used which keyword, per window.

Section 3.2 associates with every keyword the set of user ids that used it in
the current window; the Jaccard coefficient of two keywords' id sets is the
edge correlation.  This index maintains those sets incrementally as the
window slides: each quantum contributes a per-keyword user set, and sets older
than ``window_quanta`` are subtracted again.

Multiplicities are tracked per (keyword, user) so that a user who used a
keyword in several quanta stays in the id set until the *last* of those
quanta expires.

Churn proportionality (DESIGN.md Section 5): every keyword owns its own deque
of ``(quantum, users)`` entries, and a global appearance schedule records
which keywords contributed to each quantum.  A slide therefore touches only
the keywords that appeared in the entering quantum plus the keywords whose
entries expire — never the full vocabulary — and reports exactly that delta
as a :class:`SlideDelta` so downstream stages can stay delta-driven too.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

from repro.errors import StreamError

Keyword = str
UserId = Hashable


@dataclass(frozen=True)
class SlideDelta:
    """Everything one window slide changed — the AKG stage's delta contract.

    ``appeared``
        keywords with a non-empty user set in the entering quantum;
    ``expired``
        keywords that lost at least one window entry to expiry this slide;
    ``support_deltas``
        ``keyword -> (old, new)`` for every keyword whose window support
        (distinct-user count) actually moved;
    ``emptied``
        keywords whose support dropped to zero this slide — the complete set
        of stale-node candidates, because a keyword's support can only reach
        zero in the slide that expires its last entry.
    ``vanished_users``
        user ids that left *every* keyword's window id set this slide — the
        complete eviction pool for per-user memo caches (the MinHasher's
        hash memo), because a user's last window occurrence can only expire
        in one slide.

    Every field is computable in O(appeared + expired); nothing here is ever
    proportional to the window vocabulary.
    """

    quantum: int
    appeared: FrozenSet[Keyword] = frozenset()
    expired: FrozenSet[Keyword] = frozenset()
    support_deltas: Mapping[Keyword, Tuple[int, int]] = field(
        default_factory=dict
    )
    emptied: FrozenSet[Keyword] = frozenset()
    vanished_users: FrozenSet[UserId] = frozenset()

    @property
    def touched(self) -> FrozenSet[Keyword]:
        """Keywords whose window id set may have changed this slide."""
        return self.appeared | self.expired


class IdSetIndex:
    """Per-keyword sliding-window user-id sets with O(changes) updates."""

    def __init__(self, window_quanta: int) -> None:
        if window_quanta < 1:
            raise StreamError(f"window_quanta must be >= 1, got {window_quanta}")
        self.window_quanta = window_quanta
        # keyword -> deque of (quantum, frozenset of users), oldest first
        self._entries: Dict[Keyword, Deque[Tuple[int, FrozenSet[UserId]]]] = {}
        # expiry schedule: (quantum, keywords that appeared then), oldest first
        self._schedule: Deque[Tuple[int, Tuple[Keyword, ...]]] = deque()
        self._counts: Dict[Keyword, Counter] = {}
        # user -> total multiplicity across every live (keyword, quantum)
        # entry; a user whose count reaches zero has left the whole window,
        # which is what feeds SlideDelta.vanished_users.
        self._user_counts: Counter = Counter()
        self._last_quantum: int | None = None

    # ------------------------------------------------------------- updates

    def add_quantum(
        self, quantum: int, keyword_users: Mapping[Keyword, Set[UserId]]
    ) -> SlideDelta:
        """Ingest one quantum's keyword -> users mapping and expire old ones.

        Quanta must be added in increasing order.  Returns the
        :class:`SlideDelta` of the slide; work is O(appeared + expired),
        never O(window vocabulary).
        """
        if self._last_quantum is not None and quantum <= self._last_quantum:
            raise StreamError(
                f"quanta must be added in increasing order: got {quantum} "
                f"after {self._last_quantum}"
            )
        self._last_quantum = quantum
        cutoff = quantum - self.window_quanta
        # Empty user sets are skipped: they carry no id-set information and
        # would otherwise leave dangling empty entries behind.
        frozen = {
            kw: frozenset(users) for kw, users in keyword_users.items() if users
        }
        appeared = set(frozen)
        expired: Set[Keyword] = set()
        while self._schedule and self._schedule[0][0] <= cutoff:
            _, kws = self._schedule.popleft()
            expired.update(kws)
        touched = appeared | expired
        counts = self._counts
        before = {
            kw: len(counter) if (counter := counts.get(kw)) else 0
            for kw in touched
        }

        user_counts = self._user_counts
        for kw, users in frozen.items():
            entries = self._entries.get(kw)
            if entries is None:
                entries = self._entries[kw] = deque()
            entries.append((quantum, users))
            counter = counts.get(kw)
            if counter is None:
                counter = counts[kw] = Counter()
            counter.update(users)
            user_counts.update(users)
        if frozen:
            self._schedule.append((quantum, tuple(frozen)))

        vanished: Set[UserId] = set()
        for kw in expired:
            entries = self._entries.get(kw)
            if entries is None:
                continue
            counter = counts[kw]
            while entries and entries[0][0] <= cutoff:
                _, users = entries.popleft()
                for user in users:
                    remaining = counter[user] - 1
                    if remaining:
                        counter[user] = remaining
                    else:
                        del counter[user]
                    total = user_counts[user] - 1
                    if total:
                        user_counts[user] = total
                    else:
                        del user_counts[user]
                        vanished.add(user)
            if not entries:
                del self._entries[kw]
            if not counter:
                del counts[kw]

        support_deltas = {
            kw: (old_support, new_support)
            for kw, old_support in before.items()
            if (
                new_support := len(counter)
                if (counter := counts.get(kw))
                else 0
            )
            != old_support
        }
        emptied = frozenset(
            kw
            for kw, (old_support, new_support) in support_deltas.items()
            if new_support == 0
        )
        return SlideDelta(
            quantum=quantum,
            appeared=frozenset(appeared),
            expired=frozenset(expired),
            support_deltas=support_deltas,
            emptied=emptied,
            vanished_users=frozenset(vanished),
        )

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot: the per-keyword window entries.

        The multiplicity counters and the expiry schedule are derivable from
        the entries, so only the entries (plus the slide cursor) are stored;
        :meth:`from_state` rebuilds the rest deterministically.  Entries are
        emitted in sorted keyword order so the snapshot is a pure function of
        the window *contents* — the keyword-range-sharded front-end relies on
        this to make its merged checkpoint byte-identical to a serial one
        (DESIGN.md Section 7).
        """
        return {
            "last_quantum": self._last_quantum,
            "entries": [
                [kw, [[q, sorted(users, key=repr)] for q, users in entries]]
                for kw, entries in sorted(self._entries.items())
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the index in place from :meth:`to_state` output."""
        self._last_quantum = state["last_quantum"]
        self._entries = {}
        self._counts = {}
        self._user_counts = Counter()
        by_quantum: Dict[int, list] = {}
        for kw, entries in state["entries"]:
            deque_entries: Deque[Tuple[int, FrozenSet[UserId]]] = deque()
            counter: Counter = Counter()
            for q, users in entries:
                frozen = frozenset(users)
                deque_entries.append((q, frozen))
                counter.update(frozen)
                self._user_counts.update(frozen)
                by_quantum.setdefault(q, []).append(kw)
            self._entries[kw] = deque_entries
            self._counts[kw] = counter
        self._schedule = deque(
            (q, tuple(sorted(by_quantum[q]))) for q in sorted(by_quantum)
        )

    # ------------------------------------------------------------- queries

    def __contains__(self, keyword: Keyword) -> bool:
        return keyword in self._counts

    def keywords(self) -> Iterable[Keyword]:
        """Every keyword with at least one occurrence in the window."""
        return self._counts.keys()

    @property
    def num_keywords(self) -> int:
        return len(self._counts)

    def entries(self, keyword: Keyword) -> Tuple[Tuple[int, FrozenSet[UserId]], ...]:
        """The keyword's live (quantum, users) window entries, oldest first.

        Exposed for the leak tests: a keyword must never hold two entries for
        the same quantum, even when it expires and re-enters in one slide.
        """
        return tuple(self._entries.get(keyword, ()))

    def users(self, keyword: Keyword) -> Set[UserId]:
        """The id set: distinct users of ``keyword`` in the window."""
        counter = self._counts.get(keyword)
        return set(counter) if counter else set()

    def id_set(self, keyword: Keyword) -> FrozenSet[UserId]:
        """The id set as an immutable, shippable frozenset (one copy).

        The sharded front-end's exchange uses this instead of
        ``frozenset(users(kw))``, which would copy twice.
        """
        counter = self._counts.get(keyword)
        return frozenset(counter) if counter else frozenset()

    def support(self, keyword: Keyword) -> int:
        """|id set| — the node weight ``w_i`` of the ranking function."""
        counter = self._counts.get(keyword)
        return len(counter) if counter else 0

    def window_users(self) -> Set[UserId]:
        """Every user present in at least one keyword's window id set.

        The exact live set behind ``SlideDelta.vanished_users``; the MinHash
        cache-bound tests assert the hash memo never outgrows it.
        """
        return set(self._user_counts)

    def jaccard(self, kw1: Keyword, kw2: Keyword) -> float:
        """Exact edge correlation |U1 n U2| / |U1 u U2| (Section 3.2)."""
        c1 = self._counts.get(kw1)
        c2 = self._counts.get(kw2)
        if not c1 or not c2:
            return 0.0
        intersection = len(c1.keys() & c2.keys())
        union = len(c1) + len(c2) - intersection
        return intersection / union if union else 0.0


__all__ = ["IdSetIndex", "SlideDelta"]
