"""Two-state keyword automaton (Section 3.1).

A keyword is either **low** or **high**.  It moves low -> high when it shows
burstiness — at least ``theta`` (the high-state threshold, HST) distinct
users mention it within a single quantum.  A high keyword stays high while it
is part of an event cluster; otherwise it is lazily dropped after a grace
period, and any keyword absent from the whole window is stale.

The tracker only owns the automaton state; graph/cluster consequences are
handled by :class:`repro.akg.builder.AkgBuilder`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set

from repro.errors import ConfigError

Keyword = str


class BurstinessTracker:
    """Per-keyword burst detection with O(1) per-keyword quantum updates."""

    def __init__(self, theta: int) -> None:
        if theta < 1:
            raise ConfigError(f"theta must be >= 1, got {theta}")
        self.theta = theta
        self._last_bursty: Dict[Keyword, int] = {}
        self._bursty_now: Set[Keyword] = set()
        self._current_quantum: int | None = None

    def observe_quantum(
        self, quantum: int, quantum_support: Mapping[Keyword, int]
    ) -> Set[Keyword]:
        """Record one quantum's per-keyword distinct-user counts.

        Returns the set of keywords bursty *in this quantum* (>= theta
        distinct users).  The paper's "set (1)" of Section 3.2.1 — keywords
        eligible for new-edge EC computation — is exactly this set.
        """
        bursty = {
            kw for kw, count in quantum_support.items() if count >= self.theta
        }
        for kw in bursty:
            self._last_bursty[kw] = quantum
        self._bursty_now = bursty
        self._current_quantum = quantum
        return set(bursty)

    def is_bursty_now(self, keyword: Keyword) -> bool:
        return keyword in self._bursty_now

    def bursty_now(self) -> Set[Keyword]:
        return set(self._bursty_now)

    def last_bursty_quantum(self, keyword: Keyword) -> int | None:
        """The most recent quantum in which the keyword was bursty."""
        return self._last_bursty.get(keyword)

    def quanta_since_bursty(self, keyword: Keyword) -> int | None:
        """Quanta elapsed since the keyword last burst; None if it never did."""
        if self._current_quantum is None:
            return None
        last = self._last_bursty.get(keyword)
        return None if last is None else self._current_quantum - last

    def forget(self, keywords: Iterable[Keyword]) -> None:
        """Drop automaton state for keywords leaving the AKG."""
        for kw in keywords:
            self._last_bursty.pop(kw, None)
            self._bursty_now.discard(kw)


__all__ = ["BurstinessTracker"]
