"""Two-state keyword automaton (Section 3.1), advanced only on touches.

A keyword is either **low** or **high**.  It moves low -> high when it shows
burstiness — at least ``theta`` (the high-state threshold, HST) distinct
users mention it within a single quantum.  A high keyword stays high while it
is part of an event cluster; otherwise it is lazily dropped after a grace
period, and any keyword absent from the whole window is stale.

The tracker only owns the automaton state; graph/cluster consequences are
handled by :class:`repro.akg.builder.AkgBuilder`.

Delta contract (DESIGN.md Section 5): :meth:`BurstinessTracker.observe_quantum`
is fed only the keywords *touched* in a quantum, never the full vocabulary.
That is sound because the automaton has no spontaneous transitions: between
two touches a keyword observes only zero-count quanta, and a zero count can
never reach ``theta``, so the state at any later quantum is a closed-form
function of the last recorded burst — ``quantum - last_bursty`` elapsed
quanta in the low-decay branch.  :meth:`aged_out` and :meth:`is_bursty_at`
evaluate that closed form directly; the stateful test
(``tests/test_akg_burstiness_stateful.py``) proves it equal to an automaton
that is stepped explicitly for every keyword in every quantum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Set

from repro.errors import ConfigError

Keyword = str


@dataclass
class BurstState:
    """Per-keyword automaton state: everything between touches is derived.

    ``last_bursty`` is the most recent quantum the keyword cleared ``theta``;
    ``bursts`` counts clearings (burst-rate statistics, Section 7.4).  No
    per-quantum counters exist on purpose — any quantity that would need one
    (elapsed low quanta, staleness age) is a closed-form function of
    ``last_bursty`` and the query quantum.
    """

    last_bursty: int
    bursts: int = 1


class BurstinessTracker:
    """Per-keyword burst detection with O(touched) per-quantum updates."""

    def __init__(self, theta: int) -> None:
        if theta < 1:
            raise ConfigError(f"theta must be >= 1, got {theta}")
        self.theta = theta
        self._states: Dict[Keyword, BurstState] = {}
        self._bursty_now: Set[Keyword] = set()
        self._current_quantum: int | None = None

    def observe_quantum(
        self, quantum: int, quantum_support: Mapping[Keyword, int]
    ) -> Set[Keyword]:
        """Record one quantum's per-keyword distinct-user counts.

        ``quantum_support`` needs to contain only the keywords that occurred
        in the quantum (zero counts are permitted and ignored): untouched
        keywords cannot transition, so their state is caught up lazily on
        their next touch or query.  Returns the set of keywords bursty *in
        this quantum* (>= theta distinct users).  The paper's "set (1)" of
        Section 3.2.1 — keywords eligible for new-edge EC computation — is
        exactly this set.
        """
        bursty = {
            kw for kw, count in quantum_support.items() if count >= self.theta
        }
        return self.observe_bursty(quantum, bursty)

    def observe_bursty(self, quantum: int, bursty: Set[Keyword]) -> Set[Keyword]:
        """Advance the automaton from a pre-computed bursty set.

        The sharded front-end's workers apply the ``count >= theta`` test to
        their own keyword slices; the merge feeds the union here, so the
        automaton state stays a single parent-side authority while the
        per-shard transition tests run in parallel (DESIGN.md Section 7).
        """
        for kw in bursty:
            state = self._states.get(kw)
            if state is None:
                self._states[kw] = BurstState(last_bursty=quantum)
            else:
                state.last_bursty = quantum
                state.bursts += 1
        self._bursty_now = set(bursty)
        self._current_quantum = quantum
        return set(bursty)

    # -------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot of the per-keyword automaton states."""
        return {
            "current_quantum": self._current_quantum,
            "bursty_now": sorted(self._bursty_now),
            "states": [
                [kw, state.last_bursty, state.bursts]
                for kw, state in sorted(self._states.items())
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the tracker in place from :meth:`to_state` output."""
        self._current_quantum = state["current_quantum"]
        self._bursty_now = set(state["bursty_now"])
        self._states = {
            kw: BurstState(last_bursty=last_bursty, bursts=bursts)
            for kw, last_bursty, bursts in state["states"]
        }

    # ------------------------------------------------------ closed-form state

    def is_bursty_now(self, keyword: Keyword) -> bool:
        return keyword in self._bursty_now

    def bursty_now(self) -> Set[Keyword]:
        return set(self._bursty_now)

    def is_bursty_at(self, keyword: Keyword, quantum: int) -> bool:
        """Whether the keyword burst exactly in ``quantum`` (closed form)."""
        state = self._states.get(keyword)
        return state is not None and state.last_bursty == quantum

    def last_bursty_quantum(self, keyword: Keyword) -> int | None:
        """The most recent quantum in which the keyword was bursty."""
        state = self._states.get(keyword)
        return None if state is None else state.last_bursty

    def burst_count(self, keyword: Keyword) -> int:
        """How many quanta the keyword has burst in since it was first seen."""
        state = self._states.get(keyword)
        return 0 if state is None else state.bursts

    def quanta_since_bursty(self, keyword: Keyword) -> int | None:
        """Quanta elapsed since the keyword last burst; None if it never did."""
        if self._current_quantum is None:
            return None
        state = self._states.get(keyword)
        return None if state is None else self._current_quantum - state.last_bursty

    def aged_out(self, keyword: Keyword, quantum: int, grace: int) -> bool:
        """Closed-form low-state decay: is the keyword past its grace period?

        True when the keyword never burst, or its last burst is more than
        ``grace`` quanta before ``quantum`` — the lazy-drop eligibility test
        of Section 3.1, evaluated without ever stepping the automaton through
        the intervening untouched quanta.
        """
        state = self._states.get(keyword)
        return state is None or quantum - state.last_bursty > grace

    def first_droppable_quantum(self, keyword: Keyword, grace: int) -> int | None:
        """Earliest quantum at which :meth:`aged_out` can turn True.

        The builder schedules its lazy-removal check for exactly this
        quantum instead of re-testing every keyword every quantum.  None if
        the keyword never burst (it is droppable immediately).
        """
        state = self._states.get(keyword)
        return None if state is None else state.last_bursty + grace + 1

    def forget(self, keywords: Iterable[Keyword]) -> None:
        """Drop automaton state for keywords leaving the AKG."""
        for kw in keywords:
            self._states.pop(kw, None)
            self._bursty_now.discard(kw)


__all__ = ["BurstinessTracker", "BurstState"]
