"""SCP clusters vs offline biconnected clusters — Section 7.3 / Table 3.

Runs the SCP detector with the offline baseline observing the *same* AKG,
evaluates all three schemes (SCP, biconnected clusters, biconnected clusters
plus size-2 edge clusters) with the same matching machinery, and computes
the additional statistics the section reports: extra clusters/events in the
offline method, exact cluster overlap, short-cycle presence in offline event
clusters, and the clustering-time comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, FrozenSet, List, Optional, Set

from repro.config import DetectorConfig
from repro.core.atoms import atoms_in_subgraph
from repro.datasets.synthetic import Trace
from repro.eval.matching import MatchCriteria
from repro.eval.runner import EvalSummary, RunResult, evaluate_run, run_detector


@dataclass(frozen=True)
class SchemeRow:
    """One row of Table 3."""

    scheme: str
    events_discovered: int
    precision: float
    recall: float
    avg_rank: float
    avg_cluster_size: float


@dataclass
class SchemeComparison:
    """Everything Section 7.3 reports."""

    rows: List[SchemeRow] = field(default_factory=list)
    additional_clusters_pct: float = 0.0
    additional_events_pct: float = 0.0
    additional_clusters_no_edges_pct: float = 0.0
    additional_events_no_edges_pct: float = 0.0
    exact_overlap_pct: float = 0.0
    avg_size_exact_overlap: float = 0.0
    avg_size_scp_all: float = 0.0
    bc_event_clusters_with_short_cycle_pct: float = 0.0
    scp_clustering_seconds: float = 0.0
    bc_clustering_seconds: float = 0.0

    @property
    def scp_speedup_pct(self) -> float:
        """How much faster SCP cluster computation is than the offline
        recomputation (the paper reports 46%)."""
        if self.bc_clustering_seconds == 0:
            return 0.0
        return (
            (self.bc_clustering_seconds - self.scp_clustering_seconds)
            / self.bc_clustering_seconds
            * 100.0
        )

    def row(self, scheme: str) -> SchemeRow:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise KeyError(scheme)


def _scheme_row(name: str, summary: EvalSummary) -> SchemeRow:
    return SchemeRow(
        scheme=name,
        events_discovered=summary.pr.n_reported,
        precision=summary.pr.precision,
        recall=summary.pr.recall,
        avg_rank=summary.quality.avg_rank,
        avg_cluster_size=summary.quality.avg_cluster_size,
    )


def _per_quantum_scp_keyword_sets(result: RunResult) -> Dict[int, Set[FrozenSet[str]]]:
    """quantum -> node sets of live SCP clusters, rebuilt from the tracker."""
    out: Dict[int, Set[FrozenSet[str]]] = {}
    for record in result.records:
        for quantum, snapshot in record.iter_quanta():
            out.setdefault(quantum, set()).add(snapshot.keywords)
    return out


def compare_schemes(
    trace: Trace,
    config: DetectorConfig,
    criteria: MatchCriteria = MatchCriteria(),
) -> SchemeComparison:
    """Run the full Section 7.3 comparison on one trace."""
    result = run_detector(trace, config, with_baseline=True, keep_detector=True)
    baseline = result.baseline
    assert baseline is not None and result.detector is not None

    scp_summary = evaluate_run(result, trace, criteria)
    bc_summary = evaluate_run(
        result, trace, criteria, records=baseline.events(with_edge_clusters=False)
    )
    bc_edges_summary = evaluate_run(
        result, trace, criteria, records=baseline.events(with_edge_clusters=True)
    )

    comparison = SchemeComparison(
        rows=[
            _scheme_row("SCP Clusters", scp_summary),
            _scheme_row("Bi-connected Clusters", bc_summary),
            _scheme_row("Bi-connected clusters +Edges", bc_edges_summary),
        ]
    )

    # ---- per-quantum cluster-instance statistics ------------------------
    scp_by_quantum = _per_quantum_scp_keyword_sets(result)
    scp_instances = sum(len(s) for s in scp_by_quantum.values())
    bc_instances = 0
    bc_with_edge_instances = 0
    exact_overlap = 0
    overlap_sizes: List[int] = []
    with_short_cycle = 0
    for snapshot in baseline.snapshots:
        scp_sets = scp_by_quantum.get(snapshot.quantum, set())
        bc_instances += len(snapshot.clusters)
        bc_with_edge_instances += len(snapshot.clusters) + len(
            snapshot.edge_clusters
        )
        for nodes, edges in snapshot.clusters:
            if nodes in scp_sets:
                exact_overlap += 1
                overlap_sizes.append(len(nodes))
            adjacency: Dict[str, Set[str]] = {str(n): set() for n in nodes}
            for u, v in edges:
                adjacency[str(u)].add(str(v))
                adjacency[str(v)].add(str(u))
            if atoms_in_subgraph(adjacency):
                with_short_cycle += 1

    if scp_instances:
        comparison.additional_clusters_pct = (
            (bc_with_edge_instances - scp_instances) / scp_instances * 100.0
        )
        comparison.additional_clusters_no_edges_pct = (
            (bc_instances - scp_instances) / scp_instances * 100.0
        )
    scp_events = scp_summary.pr.n_reported
    if scp_events:
        comparison.additional_events_pct = (
            (bc_edges_summary.pr.n_reported - scp_events) / scp_events * 100.0
        )
        comparison.additional_events_no_edges_pct = (
            (bc_summary.pr.n_reported - scp_events) / scp_events * 100.0
        )
    if bc_instances:
        comparison.exact_overlap_pct = exact_overlap / bc_instances * 100.0
        comparison.bc_event_clusters_with_short_cycle_pct = (
            with_short_cycle / bc_instances * 100.0
        )
    if overlap_sizes:
        comparison.avg_size_exact_overlap = mean(overlap_sizes)
    sizes = [
        len(s)
        for sets in scp_by_quantum.values()
        for s in sets
    ]
    if sizes:
        comparison.avg_size_scp_all = mean(sizes)

    comparison.scp_clustering_seconds = (
        result.detector.maintainer.clustering_seconds
    )
    comparison.bc_clustering_seconds = baseline.total_seconds
    return comparison


__all__ = ["SchemeRow", "SchemeComparison", "compare_schemes"]
