"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures report;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule, like the paper's tables."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_grid(
    row_label: str,
    row_values: Sequence[object],
    col_label: str,
    col_values: Sequence[object],
    values: Sequence[Sequence[float]],
    title: str | None = None,
) -> str:
    """A parameter-sweep grid (one figure's worth of series).

    Rows are ``row_label`` settings, columns ``col_label`` settings — e.g.
    recall for each (EC threshold, quantum size) pair of Figure 7.
    """
    headers = [f"{row_label} \\ {col_label}"] + [_fmt(v) for v in col_values]
    rows = [
        [_fmt(rv)] + [_fmt(values[i][j]) for j in range(len(col_values))]
        for i, rv in enumerate(row_values)
    ]
    return render_table(headers, rows, title=title)


__all__ = ["render_table", "render_grid"]
