"""Precision and recall over planted ground truth (Section 7.2.2).

*Recall* is computed over **discoverable** real events only: like the paper
(which excluded 27 of 60 headline events with almost no tweets), an event
whose keywords cannot reach the burstiness threshold at the configured
quantum size is not a miss.  *Precision* is the fraction of reported events
that correspond to a real planted event; reported events matching spurious
injections — or nothing — count against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.events import EventRecord
from repro.datasets.events import GroundTruthEvent
from repro.eval.matching import EventMatch


@dataclass(frozen=True)
class PrecisionRecall:
    """The paper's two headline quality numbers plus their raw counts."""

    precision: float
    recall: float
    n_reported: int
    n_reported_real: int
    n_truth_discoverable: int
    n_truth_matched: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return (
            2 * self.precision * self.recall / (self.precision + self.recall)
        )


def precision_recall(
    reported: Sequence[EventRecord],
    match: EventMatch,
    ground_truth: Sequence[GroundTruthEvent],
    quantum_size: int,
    theta: int,
    reference_quantum_size: int | None = None,
) -> PrecisionRecall:
    """Compute precision/recall for one run.

    Parameters
    ----------
    reported:
        Events that survived the report filters (see
        :func:`repro.eval.filtering.reported_records`).
    match:
        Output of :func:`repro.eval.matching.match_events` **computed over
        the same reported records**.
    ground_truth:
        The trace's full ground truth (real + spurious).
    quantum_size, theta:
        Determine which real events were discoverable at this setting.
    reference_quantum_size:
        When sweeping parameters, the paper fixes one recall denominator for
        every run ("once the maximum number of real events is estimated, the
        same number is used to compute recall across all the runs",
        Section 7.2.2) — pass the sweep's most permissive quantum size here
        so a weak event missed at a small quantum counts as a miss rather
        than silently dropping out of the denominator.  None (default) uses
        the run's own quantum size (the Table 1 methodology, where
        sub-threshold events are excluded from the event set).
    """
    real_ids = {e.event_id for e in ground_truth if not e.spurious}
    denominator_quantum = (
        reference_quantum_size
        if reference_quantum_size is not None
        else quantum_size
    )
    discoverable = [
        e
        for e in ground_truth
        if not e.spurious and e.discoverable(denominator_quantum, theta)
    ]
    n_reported = len(reported)
    n_reported_real = sum(
        1
        for record in reported
        if match.detected_to_truth.get(record.event_id) in real_ids
    )
    matched_truth = {
        tid for tid in match.matched_truth_ids() if tid in real_ids
    }
    discoverable_ids = {e.event_id for e in discoverable}
    n_truth_matched = len(matched_truth & discoverable_ids)
    precision = n_reported_real / n_reported if n_reported else 0.0
    recall = (
        n_truth_matched / len(discoverable_ids) if discoverable_ids else 0.0
    )
    return PrecisionRecall(
        precision=precision,
        recall=recall,
        n_reported=n_reported,
        n_reported_real=n_reported_real,
        n_truth_discoverable=len(discoverable_ids),
        n_truth_matched=n_truth_matched,
    )


__all__ = ["PrecisionRecall", "precision_recall"]
