"""Spurious-event filters (Section 7.2.2).

Three filters decide which tracked events count as *reported*:

1. **rank floor** — ignore events whose rank never reached a threshold
   derived from the minimum rank a qualifying cluster can have;
2. **noun check** — ignore events whose keywords contain no noun;
3. **post-hoc decay rule** — events that never evolved and whose rank only
   decayed are classified spurious after the fact (the paper cannot
   suppress them at report time, and neither do we).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import DetectorConfig
from repro.core.events import EventRecord
from repro.core.ranking import minimum_rank
from repro.text.pos import NounTagger


def passes_rank_floor(record: EventRecord, config: DetectorConfig) -> bool:
    """Did the event's rank ever reach the report threshold?"""
    floor = config.rank_threshold_scale * minimum_rank(
        config.high_state_threshold, config.ec_threshold
    )
    return any(snapshot.rank >= floor for snapshot in record.snapshots)

def passes_noun_filter(record: EventRecord, tagger: Optional[NounTagger]) -> bool:
    """Does the event contain at least one noun keyword?"""
    if tagger is None:
        return True
    return tagger.has_noun(record.all_keywords)


def reported_records(
    records: Sequence[EventRecord],
    config: DetectorConfig,
    tagger: Optional[NounTagger] = None,
    apply_posthoc: bool = True,
    min_lifetime: int = 2,
) -> List[EventRecord]:
    """Events that survive the Section 7.2.2 filters.

    ``apply_posthoc=False`` gives the report-time view (rank floor + noun
    check only); the default additionally applies the post-hoc
    non-evolving/monotone-decay spurious rule used by the precision
    analysis.
    """
    out: List[EventRecord] = []
    for record in records:
        if not record.snapshots:
            continue
        if not passes_rank_floor(record, config):
            continue
        if config.require_noun and not passes_noun_filter(record, tagger):
            continue
        if apply_posthoc and record.is_spurious(min_lifetime=min_lifetime):
            continue
        out.append(record)
    return out


__all__ = ["passes_rank_floor", "passes_noun_filter", "reported_records"]
