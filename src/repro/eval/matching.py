"""Matching detected events to planted ground truth.

A detected event (an :class:`~repro.core.events.EventRecord`) matches a
ground-truth event when (a) their keyword sets overlap enough and (b) their
active intervals overlap in stream time.  Keyword overlap is measured
against everything the detected event ever contained (events evolve); the
temporal tolerance accounts for the sliding window keeping clusters alive up
to ``w`` quanta past the last supporting message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.events import EventRecord
from repro.datasets.events import GroundTruthEvent


@dataclass(frozen=True)
class MatchCriteria:
    """Thresholds for attributing a detected cluster to a planted event."""

    min_overlap: int = 2
    """At least this many shared keywords."""

    min_cluster_fraction: float = 0.34
    """At least this fraction of the detected event's keywords must belong
    to the ground-truth event — guards against giant merged clusters
    claiming every event at once."""


@dataclass
class EventMatch:
    """The outcome of matching one run against ground truth."""

    detected_to_truth: Dict[int, str] = field(default_factory=dict)
    truth_to_detected: Dict[str, List[int]] = field(default_factory=dict)
    first_detection_quantum: Dict[str, int] = field(default_factory=dict)

    def matched_truth_ids(self) -> set:
        return set(self.truth_to_detected)

    def unmatched_records(self, records: Sequence[EventRecord]) -> List[EventRecord]:
        return [r for r in records if r.event_id not in self.detected_to_truth]

    def first_detection_message(
        self, event_id: str, quantum_size: int
    ) -> Optional[int]:
        """Stream position by which the event was first reported."""
        quantum = self.first_detection_quantum.get(event_id)
        if quantum is None:
            return None
        return (quantum + 1) * quantum_size


def _keyword_overlap_score(
    record: EventRecord, truth: GroundTruthEvent, criteria: MatchCriteria
) -> int:
    """Shared-keyword count if the pair qualifies, else 0."""
    detected = record.all_keywords
    truth_keywords = set(truth.all_keywords)
    overlap = len(detected & truth_keywords)
    if overlap < criteria.min_overlap:
        return 0
    if detected and overlap / len(detected) < criteria.min_cluster_fraction:
        return 0
    return overlap


def _intervals_overlap(
    record: EventRecord,
    truth: GroundTruthEvent,
    quantum_size: int,
    window_quanta: int,
) -> bool:
    """Did the detected event live while the planted event was in-window?"""
    if not record.snapshots:
        return False
    first = record.first_quantum * quantum_size
    last = (record.last_quantum + 1) * quantum_size
    slack = window_quanta * quantum_size
    return first < truth.end_message + slack and last > truth.start_message


def match_events(
    records: Sequence[EventRecord],
    ground_truth: Sequence[GroundTruthEvent],
    quantum_size: int,
    window_quanta: int,
    criteria: MatchCriteria = MatchCriteria(),
) -> EventMatch:
    """Attribute each detected event to its best ground-truth event.

    Each detected record maps to at most one truth event (the largest
    keyword overlap among temporally compatible candidates); a truth event
    may be found by several records (e.g. after an early split).
    """
    result = EventMatch()
    for record in records:
        best: Optional[GroundTruthEvent] = None
        best_score = 0
        for truth in ground_truth:
            if not _intervals_overlap(record, truth, quantum_size, window_quanta):
                continue
            score = _keyword_overlap_score(record, truth, criteria)
            if score > best_score:
                best, best_score = truth, score
        if best is None:
            continue
        result.detected_to_truth[record.event_id] = best.event_id
        result.truth_to_detected.setdefault(best.event_id, []).append(
            record.event_id
        )
        first_quantum = record.first_quantum
        known = result.first_detection_quantum.get(best.event_id)
        if known is None or first_quantum < known:
            result.first_detection_quantum[best.event_id] = first_quantum
    return result


__all__ = ["MatchCriteria", "EventMatch", "match_events"]
