"""Cluster-quality statistics (Section 7.2.4).

Two measures judge the *quality* of discovered events beyond hit/miss:

* **average cluster size** — small, focused clusters are preferred; the
  paper sees ~6–7 keywords/event except at gamma = 0.1, where clusters
  bloat by ~50%;
* **average cluster rank** — high rank means strong, dense, well-supported
  clusters; relaxing parameters adds mostly low-rank events, dragging the
  average down 20–30%.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.core.events import EventRecord


@dataclass(frozen=True)
class QualityStats:
    """Aggregate quality of a run's reported events."""

    avg_cluster_size: float
    avg_rank: float
    avg_peak_rank: float
    avg_lifetime_quanta: float
    n_events: int


def quality_stats(records: Sequence[EventRecord]) -> QualityStats:
    """Mean per-event size/rank statistics.

    Each event contributes the mean over its own per-quantum history (so
    long-lived events do not dominate), then events are averaged uniformly.
    The per-quantum view is expanded from the tracker's change-point
    encoding (``iter_quanta``), so an event's quiet quanta weigh in exactly
    as they did when snapshots were materialised densely.
    """
    sizes = []
    ranks = []
    peaks = []
    lifetimes = []
    for record in records:
        if not record.snapshots:
            continue
        states = [s for _, s in record.iter_quanta()]
        sizes.append(mean(len(s.keywords) for s in states))
        ranks.append(mean(s.rank for s in states))
        peaks.append(record.peak_rank)
        lifetimes.append(record.lifetime_quanta)
    if not sizes:
        return QualityStats(0.0, 0.0, 0.0, 0.0, 0)
    return QualityStats(
        avg_cluster_size=mean(sizes),
        avg_rank=mean(ranks),
        avg_peak_rank=mean(peaks),
        avg_lifetime_quanta=mean(lifetimes),
        n_events=len(sizes),
    )


__all__ = ["QualityStats", "quality_stats"]
