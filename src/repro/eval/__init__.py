"""Evaluation harness: matching, metrics, filters, runners, reporting.

This subpackage reproduces the Section 7 methodology: detected events are
matched to planted ground truth by keyword overlap and temporal overlap
(:mod:`matching`), report-time and post-hoc spurious filters are applied
(:mod:`filtering`), precision/recall are computed over discoverable events
(:mod:`metrics`), cluster-quality statistics follow Section 7.2.4
(:mod:`quality`), end-to-end runs are packaged (:mod:`runner`), the
SCP-vs-offline comparison implements Section 7.3 (:mod:`comparison`), and
plain-text tables render every benchmark's output (:mod:`reporting`).
"""

from repro.eval.matching import MatchCriteria, match_events, EventMatch
from repro.eval.filtering import reported_records
from repro.eval.metrics import PrecisionRecall, precision_recall
from repro.eval.quality import QualityStats, quality_stats
from repro.eval.runner import RunResult, run_detector, evaluate_run, EvalSummary
from repro.eval.comparison import SchemeComparison, compare_schemes
from repro.eval.reporting import render_table, render_grid

__all__ = [
    "MatchCriteria",
    "match_events",
    "EventMatch",
    "reported_records",
    "PrecisionRecall",
    "precision_recall",
    "QualityStats",
    "quality_stats",
    "RunResult",
    "run_detector",
    "evaluate_run",
    "EvalSummary",
    "SchemeComparison",
    "compare_schemes",
    "render_table",
    "render_grid",
]
