"""End-to-end run orchestration: trace in, metrics out.

:func:`run_detector` replays a trace through a
:class:`~repro.api.session.DetectorSession` (optionally with the offline
baseline observing the same AKG) and packages everything the benchmarks
need; :func:`evaluate_run` turns a run into the paper's numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.api import DetectorSession, open_session
from repro.baselines.offline_bc import OfflineBcObserver
from repro.config import DetectorConfig
from repro.core.events import EventRecord
from repro.datasets.synthetic import Trace
from repro.eval.filtering import reported_records
from repro.eval.matching import EventMatch, MatchCriteria, match_events
from repro.eval.metrics import PrecisionRecall, precision_recall
from repro.eval.quality import QualityStats, quality_stats
from repro.text.pos import NounTagger


@dataclass
class RunResult:
    """One detector pass over one trace."""

    trace_name: str
    config: DetectorConfig
    records: List[EventRecord]
    tagger: NounTagger
    messages_processed: int
    elapsed_seconds: float
    detector_seconds: float
    clustering_seconds: float
    quanta: int
    peak_akg_nodes: int = 0
    peak_akg_edges: int = 0
    mean_akg_nodes: float = 0.0
    mean_akg_edges: float = 0.0
    baseline: Optional[OfflineBcObserver] = None
    detector: Optional[DetectorSession] = None

    @property
    def throughput(self) -> float:
        """Messages per second of end-to-end processing."""
        if self.elapsed_seconds == 0:
            return 0.0
        return self.messages_processed / self.elapsed_seconds


@dataclass
class EvalSummary:
    """Metrics of one run against its trace's ground truth."""

    pr: PrecisionRecall
    quality: QualityStats
    match: EventMatch
    reported: List[EventRecord]


def run_detector(
    trace: Trace,
    config: DetectorConfig,
    with_baseline: bool = False,
    keep_detector: bool = False,
) -> RunResult:
    """Replay a trace through the detector (and optionally the baseline).

    The baseline observes the identical AKG after each quantum — the paper's
    Section 7.3 setup — so its clustering differences are attributable to
    the clustering method alone.
    """
    tagger = NounTagger(trace.lexicon)
    detector = open_session(config, noun_tagger=tagger)
    baseline = (
        OfflineBcObserver(detector) if with_baseline else None
    )
    start = time.perf_counter()
    node_sum = edge_sum = 0
    peak_nodes = peak_edges = 0
    quanta = 0
    for report in detector.ingest_many(trace.messages, flush=True):
        quanta += 1
        stats = report.akg_stats
        if stats is not None:
            node_sum += stats.akg_nodes
            edge_sum += stats.akg_edges
            peak_nodes = max(peak_nodes, stats.akg_nodes)
            peak_edges = max(peak_edges, stats.akg_edges)
        if baseline is not None:
            baseline.observe_quantum()
    elapsed = time.perf_counter() - start
    return RunResult(
        trace_name=trace.name,
        config=config,
        records=detector.tracker.all_events(),
        tagger=tagger,
        messages_processed=detector.total_messages,
        elapsed_seconds=elapsed,
        detector_seconds=detector.total_seconds,
        clustering_seconds=detector.maintainer.clustering_seconds,
        quanta=quanta,
        peak_akg_nodes=peak_nodes,
        peak_akg_edges=peak_edges,
        mean_akg_nodes=node_sum / quanta if quanta else 0.0,
        mean_akg_edges=edge_sum / quanta if quanta else 0.0,
        baseline=baseline,
        detector=detector if keep_detector else None,
    )


def evaluate_run(
    result: RunResult,
    trace: Trace,
    criteria: MatchCriteria = MatchCriteria(),
    records: Optional[List[EventRecord]] = None,
    apply_posthoc: bool = True,
    reference_quantum_size: Optional[int] = None,
) -> EvalSummary:
    """Apply filters, match against ground truth, compute the metrics.

    ``records`` overrides the record set (used to evaluate the baseline's
    trackers with the same machinery); ``reference_quantum_size`` fixes the
    recall denominator across a parameter sweep (see
    :func:`repro.eval.metrics.precision_recall`).
    """
    config = result.config
    candidate_records = result.records if records is None else records
    reported = reported_records(
        candidate_records, config, result.tagger, apply_posthoc=apply_posthoc
    )
    match = match_events(
        reported,
        trace.ground_truth,
        quantum_size=config.quantum_size,
        window_quanta=config.window_quanta,
        criteria=criteria,
    )
    pr = precision_recall(
        reported,
        match,
        trace.ground_truth,
        quantum_size=config.quantum_size,
        theta=config.high_state_threshold,
        reference_quantum_size=reference_quantum_size,
    )
    return EvalSummary(
        pr=pr,
        quality=quality_stats(reported),
        match=match,
        reported=reported,
    )


__all__ = ["RunResult", "EvalSummary", "run_detector", "evaluate_run"]
