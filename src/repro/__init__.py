"""repro — Real-time discovery of dense clusters in highly dynamic graphs.

A complete reproduction of Agarwal, Ramamritham & Bhide, *Real Time Discovery
of Dense Clusters in Highly Dynamic Graphs* (PVLDB 5(10), 2012): incremental
maintenance of short-cycle-property (SCP) clusters — approximate majority
quasi-cliques — over the active keyword graph of a microblog stream, with
local event ranking, an offline biconnected-cluster baseline, synthetic
workload generators, and the paper's full evaluation harness.

Public entry points
-------------------
:class:`EventDetector`     streaming detector (Sections 3–6 end to end)
:class:`DetectorConfig`    Table 2 parameters
:class:`Message`           stream record
:class:`ClusterMaintainer` incremental SCP clustering over any dynamic graph
:class:`DynamicGraph`      the graph substrate
``repro.datasets``         synthetic ES/TW traces and ground truth
``repro.baselines``        offline biconnected clustering ([2]) and trending
``repro.eval``             precision/recall/quality harness
"""

from repro.config import DetectorConfig, NOMINAL_CONFIG
from repro.core.changelog import ChangeBatch, ChangeEvent, ChangeLog
from repro.core.engine import EventDetector, QuantumReport, ReportedEvent, StageTimings
from repro.core.incremental import IncrementalRanker
from repro.core.maintenance import ClusterMaintainer, decompose_graph
from repro.core.clusters import Cluster, ClusterRegistry
from repro.core.events import EventRecord, EventTracker
from repro.core.ranking import cluster_rank, minimum_rank
from repro.graph.dynamic_graph import DynamicGraph, edge_key
from repro.stream.messages import Message
from repro.errors import (
    ClusterError,
    ConfigError,
    GraphError,
    ReproError,
    StreamError,
)

__version__ = "1.0.0"

__all__ = [
    "DetectorConfig",
    "NOMINAL_CONFIG",
    "EventDetector",
    "QuantumReport",
    "ReportedEvent",
    "StageTimings",
    "ChangeBatch",
    "ChangeEvent",
    "ChangeLog",
    "IncrementalRanker",
    "ClusterMaintainer",
    "decompose_graph",
    "Cluster",
    "ClusterRegistry",
    "EventRecord",
    "EventTracker",
    "cluster_rank",
    "minimum_rank",
    "DynamicGraph",
    "edge_key",
    "Message",
    "ReproError",
    "ConfigError",
    "GraphError",
    "ClusterError",
    "StreamError",
    "__version__",
]
