"""repro — Real-time discovery of dense clusters in highly dynamic graphs.

A complete reproduction of Agarwal, Ramamritham & Bhide, *Real Time Discovery
of Dense Clusters in Highly Dynamic Graphs* (PVLDB 5(10), 2012): incremental
maintenance of short-cycle-property (SCP) clusters — approximate majority
quasi-cliques — over the active keyword graph of a microblog stream, with
local event ranking, an offline biconnected-cluster baseline, synthetic
workload generators, and the paper's full evaluation harness.

Public entry points
-------------------
:func:`open_session`       streaming session API: ingest / subscribe /
                           checkpoint-resume (:mod:`repro.api`)
:class:`DetectorSession`   the long-lived session behind it
:class:`EventDetector`     legacy batch-shaped facade over the session
:class:`DetectorConfig`    Table 2 parameters
:class:`Message`           stream record
``repro.extract``          pluggable entity extractors: keyword text,
                           structured fields, raw actor–entity edges
:class:`ClusterMaintainer` incremental SCP clustering over any dynamic graph
:class:`DynamicGraph`      the graph substrate
``repro.pipeline``         the composable per-quantum Stage pipeline
``repro.datasets``         synthetic ES/TW traces and ground truth
``repro.baselines``        offline biconnected clustering ([2]) and trending
``repro.eval``             precision/recall/quality harness
"""

from repro.api import (
    CallbackSink,
    DetectorSession,
    EventKind,
    QueueSink,
    SessionEvent,
    open_session,
)
from repro.config import DetectorConfig, NOMINAL_CONFIG
from repro.core.changelog import ChangeBatch, ChangeEvent, ChangeLog
from repro.extract import (
    EdgeStreamAdapter,
    EntityExtractor,
    FieldExtractor,
    KeywordExtractor,
    extractor_names,
    make_extractor,
    register_extractor,
)
from repro.core.engine import EventDetector, QuantumReport, ReportedEvent, StageTimings
from repro.core.incremental import IncrementalRanker
from repro.core.maintenance import ClusterMaintainer, decompose_graph
from repro.core.clusters import Cluster, ClusterRegistry
from repro.core.events import EventRecord, EventTracker
from repro.core.ranking import cluster_rank, minimum_rank
from repro.graph.dynamic_graph import DynamicGraph, edge_key
from repro.stream.messages import Message
from repro.errors import (
    CheckpointError,
    ClusterError,
    ConfigError,
    GraphError,
    PipelineError,
    ReproError,
    StreamError,
)

__version__ = "1.0.0"

__all__ = [
    "open_session",
    "DetectorSession",
    "EventKind",
    "SessionEvent",
    "CallbackSink",
    "QueueSink",
    "DetectorConfig",
    "NOMINAL_CONFIG",
    "EntityExtractor",
    "KeywordExtractor",
    "FieldExtractor",
    "EdgeStreamAdapter",
    "register_extractor",
    "extractor_names",
    "make_extractor",
    "EventDetector",
    "QuantumReport",
    "ReportedEvent",
    "StageTimings",
    "ChangeBatch",
    "ChangeEvent",
    "ChangeLog",
    "IncrementalRanker",
    "ClusterMaintainer",
    "decompose_graph",
    "Cluster",
    "ClusterRegistry",
    "EventRecord",
    "EventTracker",
    "cluster_rank",
    "minimum_rank",
    "DynamicGraph",
    "edge_key",
    "Message",
    "ReproError",
    "ConfigError",
    "GraphError",
    "ClusterError",
    "StreamError",
    "PipelineError",
    "CheckpointError",
    "__version__",
]
