"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Errors are raised eagerly on misuse (bad configuration,
inconsistent graph operations) rather than returning sentinel values.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is out of its documented range."""


class GraphError(ReproError):
    """An inconsistent operation was attempted on a dynamic graph."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its repr by default
        return f"node not in graph: {self.node!r}"


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__((u, v))
        self.u = u
        self.v = v

    def __str__(self) -> str:
        return f"edge not in graph: ({self.u!r}, {self.v!r})"


class DuplicateNodeError(GraphError):
    """A node was added twice."""


class DuplicateEdgeError(GraphError):
    """An edge was added twice."""


class ClusterError(ReproError):
    """The cluster registry detected an internal inconsistency."""


class StreamError(ReproError):
    """A message stream source produced invalid input."""


class PipelineError(ReproError):
    """A stage pipeline was assembled or driven inconsistently."""


class CheckpointError(ReproError):
    """A session checkpoint could not be written or restored."""


class ServeError(ReproError):
    """The multi-tenant serving layer rejected a request or operation."""
