"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``       run the Figure 1 quickstart scenario
``generate``   build a synthetic trace (tw / es / ground-truth) as JSONL
``detect``     run the detector over a JSONL trace and print events
``follow``     tail a delta log as a warm standby; optionally promote
``sweep``      print a small precision/recall parameter grid for a preset
``serve``      run the multi-tenant serving layer (HTTP + WebSocket)
``shard-worker``  host shard window state over TCP for a remote detector
               (``detect --workers host:port,...`` scatters to them;
               results stay bit-identical to a local run, DESIGN.md S12)

``detect`` exposes the verification baselines: ``--oracle-ranking`` re-ranks
every cluster from scratch each quantum, and ``--oracle-akg`` rebuilds the
AKG window state (id sets, sketches, dead-node sweep) from scratch each
quantum.  Either flag trades the incremental path's churn-proportional cost
for the obviously-correct O(window x vocabulary) one, so an A/B run over the
same trace (optionally with ``--timing``) doubles as a live differential
check and a speedup demo.

``detect`` also rides the session API: ``--checkpoint PATH`` snapshots the
full detector state after the trace (including a buffered partial quantum),
and ``--resume-from PATH`` continues a checkpointed session over more data —
the resumed stream is bit-identical to one that never stopped (DESIGN.md
Section 6).  ``--delta-log DIR`` switches durability to the incremental
checkpoint format (base snapshot + per-quantum delta records, DESIGN.md
Section 10); ``follow DIR --promote`` is the matching failover move: a warm
standby replays the log and takes over bit-identically mid-stream.

The engine is entity-agnostic: ``detect --extractor edges`` runs a raw
actor–entity interaction stream (``generate edge``), ``--extractor fields``
a structured-log stream (``generate fields``), and ``--extractor keyword``
(default) the paper's tokenized-text workload — same pipeline, same
checkpoints, different ingestion front (DESIGN.md Section 8).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api import open_session
from repro.config import DetectorConfig
from repro.core.engine import EventDetector
from repro.datasets.entity_streams import (
    build_edge_stream_trace,
    build_structured_trace,
)
from repro.datasets.figure1 import figure1_messages
from repro.datasets.traces import (
    build_es_trace,
    build_ground_truth_trace,
    build_tw_trace,
)
from repro.errors import ConfigError
from repro.extract import extractor_names
from repro.eval.reporting import render_grid, render_table
from repro.eval.runner import evaluate_run, run_detector
from repro.stream.sources import (
    TraceReadStats,
    read_jsonl_trace,
    write_jsonl_trace,
)

_TRACE_BUILDERS = {
    "tw": build_tw_trace,
    "es": build_es_trace,
    "ground-truth": build_ground_truth_trace,
}

# Non-text workloads (generate-only: sweep's keyword evaluation grid does
# not apply to them).  ``edge`` pairs with ``detect --extractor edges``,
# ``fields`` with ``detect --extractor fields``.
_ENTITY_TRACE_BUILDERS = {
    "edge": build_edge_stream_trace,
    "fields": build_structured_trace,
}


def _workers_value(text: str):
    """``--workers`` accepts an int (local pool) or ``host:port,...``
    (remote shard-worker daemons); the config validates the endpoint form."""
    try:
        return int(text)
    except ValueError:
        return text


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quantum-size", type=int, default=160,
                        help="messages per quantum (Table 2 nominal: 160)")
    parser.add_argument("--window-quanta", type=int, default=30,
                        help="quanta per sliding window (nominal: 30)")
    parser.add_argument("--theta", type=int, default=4,
                        help="high-state threshold, users/quantum (nominal: 4)")
    parser.add_argument("--gamma", type=float, default=0.20,
                        help="edge-correlation threshold (nominal: 0.20)")
    parser.add_argument("--exact-ec", action="store_true",
                        help="disable the MinHash candidate filter")
    parser.add_argument("--extractor", choices=extractor_names(),
                        default="keyword", metavar="NAME",
                        help="entity extractor for the ingestion stage "
                             f"({', '.join(extractor_names())}; default "
                             "keyword — tokenized message text)")
    parser.add_argument("--extractor-options", metavar="JSON", default=None,
                        help="JSON object of options for --extractor "
                             '(e.g. \'{"fields": ["tags"]}\')')
    parser.add_argument("--workers", type=_workers_value, default=1,
                        metavar="N|HOST:PORT,...",
                        help="parallel workers for the extract/AKG stages "
                             "(entity-range sharding; results are "
                             "bit-identical for any value, default 1 = "
                             "serial); pass 'host:port,host:port' to "
                             "scatter to running 'repro shard-worker' "
                             "daemons over TCP instead of a local pool")
    parser.add_argument("--overlap", action="store_true",
                        help="pipeline quanta on the sharded front-end: "
                             "run each quantum's maintain/rank/report tail "
                             "on a background thread under the next "
                             "quantum's extract+scatter (requires "
                             "--workers > 1 or --shard-count; results stay "
                             "bit-identical)")
    parser.add_argument("--shard-count", type=int, default=None, metavar="S",
                        help="entity hash ranges to partition into "
                             "(default: one per worker)")
    parser.add_argument("--backend", choices=("reference", "batched"),
                        default=None,
                        help="hot-path implementation: 'batched' extracts "
                             "whole quanta into interned array columns "
                             "(vectorized when numpy is importable); "
                             "results are bit-identical to 'reference' "
                             "(default)")
    parser.add_argument("--timing", action="store_true",
                        help="print a per-stage timing breakdown "
                             "(extract/akg/maintain/propagate/rank/report)")
    parser.add_argument("--profile", action="store_true",
                        help="run the pipeline under cProfile and print the "
                             "top-20 cumulative hot functions after the run")
    parser.add_argument("--oracle-ranking", action="store_true",
                        help="disable the incremental rank cache and re-rank "
                             "every cluster from scratch each quantum "
                             "(verification baseline)")
    parser.add_argument("--oracle-akg", action="store_true",
                        help="rebuild the AKG window state (id sets, "
                             "sketches, dead-node sweep) from scratch each "
                             "quantum instead of applying deltas "
                             "(verification baseline)")
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="write a session checkpoint to PATH after the "
                             "trace is consumed (a trailing partial quantum "
                             "is saved in the checkpoint, not flushed)")
    parser.add_argument("--resume-from", metavar="PATH",
                        help="resume a session from a checkpoint before "
                             "ingesting the trace; the checkpoint's config "
                             "overrides the config flags (PATH may be a "
                             "monolithic .ckpt file or a delta-checkpoint "
                             "directory)")
    parser.add_argument("--delta-log", metavar="DIR",
                        help="write an incremental checkpoint to DIR while "
                             "detecting: base snapshot now, then one "
                             "durable delta record per completed quantum "
                             "(tail it with 'repro follow DIR')")
    parser.add_argument("--delta-compact-ratio", type=float, default=4.0,
                        metavar="R",
                        help="compact the delta log (fresh base, truncated "
                             "log) once it exceeds R x the base size "
                             "(default 4.0)")


def _config_from(args: argparse.Namespace) -> DetectorConfig:
    options = {}
    if args.extractor_options:
        try:
            options = json.loads(args.extractor_options)
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"--extractor-options is not valid JSON: {exc}"
            ) from exc
        if not isinstance(options, dict):
            raise ConfigError(
                "--extractor-options must be a JSON object, got "
                f"{type(options).__name__}"
            )
    return DetectorConfig(
        quantum_size=args.quantum_size,
        window_quanta=args.window_quanta,
        high_state_threshold=args.theta,
        ec_threshold=args.gamma,
        use_minhash_filter=not args.exact_ec,
        extractor=args.extractor,
        extractor_options=options,
        oracle_akg=args.oracle_akg,
        oracle_ranking=args.oracle_ranking,
        workers=args.workers,
        shard_count=args.shard_count,
        backend=args.backend or "reference",
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    detector = EventDetector(
        DetectorConfig(
            quantum_size=6,
            window_quanta=5,
            high_state_threshold=2,
            ec_threshold=0.1,
            use_minhash_filter=False,
        )
    )
    for label, batch in zip(("initial tweets", "window slides"), figure1_messages()):
        report = detector.process_quantum(batch)
        print(f"[{label}]")
        for event in report.reported:
            print(f"  event #{event.event_id}: {sorted(event.keywords)} "
                  f"rank={event.rank:.1f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    builder = {**_TRACE_BUILDERS, **_ENTITY_TRACE_BUILDERS}[args.preset]
    trace = builder(total_messages=args.messages, seed=args.seed)
    count = write_jsonl_trace(args.output, trace.messages)
    truth_path = args.output + ".truth.json"
    with open(truth_path, "w", encoding="utf-8") as fh:
        json.dump(
            [
                {
                    "event_id": e.event_id,
                    "keywords": list(e.keywords),
                    "start": e.start_message,
                    "end": e.end_message,
                    "spurious": e.spurious,
                    "headlined": e.headlined,
                }
                for e in trace.ground_truth
            ],
            fh,
            indent=1,
        )
    print(f"wrote {count} messages to {args.output}")
    print(f"wrote ground truth to {truth_path}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    if args.resume_from:
        if args.oracle_ranking or args.oracle_akg:
            print(
                "error: --oracle-ranking/--oracle-akg cannot be combined "
                "with --resume-from; a resumed session keeps the modes it "
                "was snapshotted with",
                file=sys.stderr,
            )
            return 2
        # Checkpoints are execution-agnostic: --workers picks how the
        # resumed stream runs, results are bit-identical either way.
        session = open_session(
            resume=args.resume_from,
            workers=args.workers,
            shard_count=args.shard_count,
            backend=args.backend,
            overlap=args.overlap,
            profile=args.profile,
            delta_log=args.delta_log,
            delta_compact_ratio=args.delta_compact_ratio,
        )
        print(
            f"-- resumed from {args.resume_from} at quantum "
            f"{session.current_quantum} "
            f"({session.batcher.pending} messages buffered); "
            f"config comes from the checkpoint"
        )
    else:
        session = open_session(
            _config_from(args),
            overlap=args.overlap,
            profile=args.profile,
            delta_log=args.delta_log,
            delta_compact_ratio=args.delta_compact_ratio,
        )
    if args.delta_log:
        writer = session.delta_writer
        print(
            f"-- delta log enabled at {args.delta_log} "
            f"(generation {writer.generation}, "
            f"base quantum {session.current_quantum})"
        )
    printed = 0
    quanta = 0
    cache_hits = 0
    recomputed = 0
    # The context manager guarantees worker-pool shutdown (--workers) even
    # when the trace raises mid-stream.
    with session:
        # With --checkpoint the trailing partial quantum stays buffered (it
        # is saved in the checkpoint and completed by the resumed run);
        # without it the legacy batch behaviour of flushing the tail is
        # kept.
        read_stats = TraceReadStats()
        stream = session.ingest_many(
            read_jsonl_trace(args.trace, stats=read_stats),
            flush=not args.checkpoint,
        )
        for report in stream:
            quanta += 1
            cache_hits += report.rank_cache_hits
            recomputed += report.ranked_clusters - report.rank_cache_hits
            for event in report.reported:
                if event.event_id in report.new_event_ids:
                    printed += 1
                    print(
                        f"q{report.quantum:<5} NEW event #{event.event_id}: "
                        f"{', '.join(sorted(event.keywords))} "
                        f"(rank {event.rank:.1f})"
                    )
        print(
            f"-- {printed} events, {session.total_messages} messages, "
            f"{session.throughput():.0f} msg/s"
        )
        if read_stats.malformed:
            print(
                f"-- WARNING: skipped {read_stats.malformed} malformed "
                f"trace line(s) (first: {read_stats.errors[0]})",
                file=sys.stderr,
            )
        if args.timing:
            print(_render_timing(session, quanta, cache_hits, recomputed))
        if args.profile:
            print(session.profile_stats(top=20))
        if args.checkpoint:
            session.snapshot(args.checkpoint)
            print(
                f"-- checkpoint written to {args.checkpoint} "
                f"(quantum {session.current_quantum}, "
                f"{session.batcher.pending} messages buffered)"
            )
        if args.delta_log:
            writer = session.delta_writer
            print(
                f"-- delta log: {writer.records_written} record(s), "
                f"{writer.compactions} compaction(s), final generation "
                f"{writer.generation}"
            )
    return 0


def _cmd_follow(args: argparse.Namespace) -> int:
    """Warm-standby follower over a delta-checkpoint directory."""
    import time

    from repro.api import FollowerSession

    follower = FollowerSession(args.delta_log)
    print(
        f"-- following {args.delta_log}: generation {follower.generation}, "
        f"quantum {follower.current_quantum} "
        f"({follower.records_applied} delta record(s) replayed)"
    )
    if args.until_quantum is not None:
        follower.wait_for_quantum(
            args.until_quantum, timeout=args.timeout
        )
        print(f"-- caught up to quantum {follower.current_quantum}")
    elif args.watch is not None:
        deadline = time.monotonic() + args.watch
        while time.monotonic() < deadline:
            applied = follower.catch_up()
            if applied:
                print(
                    f"-- applied {applied} record(s), now at quantum "
                    f"{follower.current_quantum} "
                    f"(generation {follower.generation})"
                )
            time.sleep(args.poll)
    if args.checkpoint:
        follower.snapshot(args.checkpoint)
        print(
            f"-- follower checkpoint written to {args.checkpoint} "
            f"(quantum {follower.current_quantum})"
        )
    if args.promote:
        session = follower.promote(
            workers=args.workers,
            shard_count=args.shard_count,
            backend=args.backend,
        )
        print(
            f"-- promoted to a live session at quantum "
            f"{session.current_quantum}; feed the stream from this "
            f"quantum boundary to continue bit-identically"
        )
        with session:
            if args.trace:
                printed = 0
                read_stats = TraceReadStats()
                for report in session.ingest_many(
                    read_jsonl_trace(args.trace, stats=read_stats),
                    flush=not args.promote_checkpoint,
                ):
                    for event in report.reported:
                        if event.event_id in report.new_event_ids:
                            printed += 1
                            print(
                                f"q{report.quantum:<5} NEW event "
                                f"#{event.event_id}: "
                                f"{', '.join(sorted(event.keywords))} "
                                f"(rank {event.rank:.1f})"
                            )
                print(
                    f"-- {printed} events, {session.total_messages} "
                    f"messages total"
                )
            if args.promote_checkpoint:
                session.snapshot(args.promote_checkpoint)
                print(
                    f"-- promoted-session checkpoint written to "
                    f"{args.promote_checkpoint} "
                    f"(quantum {session.current_quantum})"
                )
    return 0


def _render_timing(
    session, quanta: int, cache_hits: int, recomputed: int
) -> str:
    """Per-stage breakdown of the staged pipeline's accumulated wall time."""
    totals = session.total_timings
    overall = totals.total or 1e-12
    lines = [f"-- per-stage timing over {quanta} quanta:"]
    for stage, seconds in totals.as_dict().items():
        lines.append(
            f"   {stage:<10} {seconds * 1000:9.1f} ms  "
            f"({100.0 * seconds / overall:5.1f}%)"
        )
    lines.append(f"   {'total':<10} {overall * 1000:9.1f} ms")
    ranked = cache_hits + recomputed
    if ranked:
        lines.append(
            f"   rank cache: {cache_hits}/{ranked} cluster ranks served "
            f"from cache ({100.0 * cache_hits / ranked:.1f}%)"
        )
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant serving layer until interrupted."""
    import asyncio

    from repro.serve.server import serve_forever

    def _announce(bound) -> None:
        host, port = bound
        print(f"-- serving on http://{host}:{port} "
              f"({args.workers} worker(s), state_dir={args.state_dir})")
        print(f"   PUT  /v1/<tenant>          create or resume a tenant")
        print(f"   POST /v1/<tenant>/ingest   batch ingest (JSONL body)")
        print(f"   GET  /v1/<tenant>/events   WebSocket event fan-out")
        print(f"   GET  /metrics              live stats + bench baselines")

    try:
        # On Ctrl-C asyncio.run cancels the task; serve_forever's shutdown
        # path drains every tenant and checkpoints the persistent ones.
        asyncio.run(
            serve_forever(
                host=args.host,
                port=args.port,
                ready=_announce,
                state_dir=args.state_dir,
                workers=args.workers,
                max_queue=args.max_queue,
                subscriber_buffer=args.subscriber_buffer,
                stall_deadline=args.stall_deadline,
            )
        )
    except KeyboardInterrupt:
        print("-- interrupted; tenants drained and checkpointed")
    return 0


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    """Host shard window state over TCP for a remote detector."""
    from repro.parallel.remote import serve_shard_worker

    def _announce(server) -> None:
        # The exact "listening on HOST:PORT" line is parsed by the CI
        # distributed-smoke harness; keep it stable and flushed.
        print(
            f"-- shard worker listening on {server.host}:{server.port}",
            flush=True,
        )
        print(
            "   point a detector at it: repro detect ... "
            "--workers HOST:PORT[,HOST:PORT...]",
            flush=True,
        )

    serve_shard_worker(args.host, args.port, announce=_announce)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    builder = _TRACE_BUILDERS[args.preset]
    trace = builder(total_messages=args.messages, seed=args.seed)
    quanta = [80, 160, 240]
    gammas = [0.10, 0.20, 0.25]
    recall, precision = [], []
    for gamma in gammas:
        r_row, p_row = [], []
        for quantum in quanta:
            config = DetectorConfig(quantum_size=quantum, ec_threshold=gamma)
            summary = evaluate_run(
                run_detector(trace, config), trace,
                reference_quantum_size=max(quanta),
            )
            r_row.append(summary.pr.recall)
            p_row.append(summary.pr.precision)
        recall.append(r_row)
        precision.append(p_row)
    print(render_grid("gamma", gammas, "quantum", quanta, recall,
                      title=f"Recall, {trace.name} trace"))
    print()
    print(render_grid("gamma", gammas, "quantum", quanta, precision,
                      title=f"Precision, {trace.name} trace"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Real-time dense-cluster event detection (VLDB 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the Figure 1 quickstart scenario")
    demo.set_defaults(func=_cmd_demo)

    generate = sub.add_parser("generate", help="generate a synthetic JSONL trace")
    generate.add_argument(
        "preset",
        choices=sorted({**_TRACE_BUILDERS, **_ENTITY_TRACE_BUILDERS}),
        help="tw/es/ground-truth: keyword microblog workloads; "
             "edge: actor-entity interaction stream (detect --extractor "
             "edges); fields: structured-log stream (detect --extractor "
             "fields)",
    )
    generate.add_argument("output", help="output JSONL path")
    generate.add_argument("--messages", type=int, default=20_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.set_defaults(func=_cmd_generate)

    detect = sub.add_parser("detect", help="run the detector over a JSONL trace")
    detect.add_argument("trace", help="input JSONL path")
    _add_config_arguments(detect)
    detect.set_defaults(func=_cmd_detect)

    follow = sub.add_parser(
        "follow",
        help="tail a delta log as a warm standby; optionally promote",
    )
    follow.add_argument(
        "delta_log", metavar="DIR",
        help="delta-checkpoint directory a leader writes with "
             "'detect --delta-log DIR'",
    )
    follow.add_argument("--watch", type=float, default=None, metavar="SECS",
                        help="keep tailing for SECS seconds, printing "
                             "progress as records arrive")
    follow.add_argument("--until-quantum", type=int, default=None,
                        metavar="N",
                        help="block until the log reaches quantum N "
                             "(readable timeout error after --timeout)")
    follow.add_argument("--timeout", type=float, default=30.0,
                        metavar="SECS",
                        help="give up on --until-quantum after SECS "
                             "(default 30)")
    follow.add_argument("--poll", type=float, default=0.2, metavar="SECS",
                        help="poll interval while watching (default 0.2)")
    follow.add_argument("--checkpoint", metavar="PATH",
                        help="write the follower's state as a monolithic "
                             "checkpoint (off-leader snapshotting)")
    follow.add_argument("--promote", action="store_true",
                        help="promote into a live session after catching "
                             "up (the failover move)")
    follow.add_argument("--trace", metavar="PATH",
                        help="with --promote: JSONL trace to ingest on the "
                             "promoted session (the stream from the last "
                             "logged quantum boundary on)")
    follow.add_argument("--promote-checkpoint", metavar="PATH",
                        help="with --promote: snapshot the promoted "
                             "session after the trace")
    follow.add_argument("--workers", type=_workers_value, default=1,
                        metavar="N|HOST:PORT,...",
                        help="workers for the promoted session (results "
                             "identical for any value; accepts remote "
                             "shard-worker endpoints like detect)")
    follow.add_argument("--shard-count", type=int, default=None, metavar="S")
    follow.add_argument("--backend", choices=("reference", "batched"),
                        default=None,
                        help="hot-path backend for the promoted session")
    follow.set_defaults(func=_cmd_follow)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant serving layer (HTTP + WebSocket)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (default 8765; 0 = ephemeral)")
    serve.add_argument("--state-dir", metavar="DIR", default=None,
                       help="per-tenant durability root: delta log while "
                            "running, monolithic snapshot on graceful "
                            "close; omit for in-memory tenants")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="shared executor threads all tenants' quanta "
                            "interleave over (default 2)")
    serve.add_argument("--max-queue", type=int, default=100_000, metavar="M",
                       help="per-tenant ingest queue bound in messages; "
                            "overflow is shed and counted (default 100000)")
    serve.add_argument("--subscriber-buffer", type=int, default=1024,
                       metavar="E",
                       help="per-subscriber event buffer; a slow consumer "
                            "loses oldest events first (default 1024)")
    serve.add_argument("--stall-deadline", type=float, default=10.0,
                       metavar="SECS",
                       help="disconnect a subscriber whose socket write "
                            "stalls longer than SECS (default 10)")
    serve.set_defaults(func=_cmd_serve)

    shard_worker = sub.add_parser(
        "shard-worker",
        help="host shard window state over TCP for a remote detector",
    )
    shard_worker.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1; use "
                                   "0.0.0.0 to accept detectors from other "
                                   "machines)")
    shard_worker.add_argument("--port", type=int, default=0,
                              help="bind port (default 0 = ephemeral; the "
                                   "chosen port is announced on stdout)")
    shard_worker.set_defaults(func=_cmd_shard_worker)

    sweep = sub.add_parser("sweep", help="print a small parameter-sweep grid")
    sweep.add_argument("preset", choices=sorted(_TRACE_BUILDERS))
    sweep.add_argument("--messages", type=int, default=12_000)
    sweep.add_argument("--seed", type=int, default=7)
    sweep.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
