"""Comparison baselines from the paper's evaluation.

* :mod:`repro.baselines.offline_bc` — the offline biconnected-cluster method
  of Bansal et al. [2], recomputed globally on the full AKG after every
  quantum (Section 7.3's comparator), with and without size-2 edge clusters;
* :mod:`repro.baselines.tracking` — snapshot-to-snapshot event identity for
  baselines that lack incremental cluster identity;
* :mod:`repro.baselines.trending` — a trending-topics strawman (windowed
  keyword popularity), the motivation-section foil: it needs far more
  volume before it reports anything.
"""

from repro.baselines.offline_bc import OfflineBcObserver, BcQuantumSnapshot
from repro.baselines.tracking import SnapshotEventTracker
from repro.baselines.trending import TrendingTopicsBaseline

__all__ = [
    "OfflineBcObserver",
    "BcQuantumSnapshot",
    "SnapshotEventTracker",
    "TrendingTopicsBaseline",
]
