"""Snapshot-based event identity for non-incremental baselines.

The offline baseline recomputes its clustering from scratch every quantum,
so cluster identity across quanta has to be reconstructed by content
overlap.  Each snapshot cluster is matched to the previous quantum's event
with the largest keyword overlap (greedy, requiring at least two shared
keywords); unmatched clusters open new events, unmatched previous events
die.  This mirrors how the paper's comparison attributes offline clusters
to events over time.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.events import EventRecord, EventSnapshot

SnapshotCluster = Tuple[FrozenSet[str], float, float, int]
"""(keywords, rank, support, num_edges) of one cluster in one quantum."""


class SnapshotEventTracker:
    """Tracks event identity across independent per-quantum clusterings."""

    def __init__(self, min_overlap: int = 2) -> None:
        self.min_overlap = min_overlap
        self._records: Dict[int, EventRecord] = {}
        self._alive: Dict[int, FrozenSet[str]] = {}
        self._ids = itertools.count(1)

    def observe_quantum(
        self, quantum: int, clusters: Sequence[SnapshotCluster]
    ) -> None:
        """Match this quantum's clusters to live events and update records."""
        # Greedy best-overlap assignment, largest overlap first.
        candidates: List[Tuple[int, int, int]] = []  # (-overlap, ci, event)
        cluster_list = list(clusters)
        for ci, (keywords, _, _, _) in enumerate(cluster_list):
            for event_id, prev_keywords in self._alive.items():
                overlap = len(keywords & prev_keywords)
                if overlap >= self.min_overlap:
                    candidates.append((overlap, ci, event_id))
        candidates.sort(key=lambda t: -t[0])
        cluster_event: Dict[int, int] = {}
        used_events: set = set()
        for overlap, ci, event_id in candidates:
            if ci in cluster_event or event_id in used_events:
                continue
            cluster_event[ci] = event_id
            used_events.add(event_id)

        next_alive: Dict[int, FrozenSet[str]] = {}
        for ci, (keywords, rank, support, num_edges) in enumerate(cluster_list):
            event_id = cluster_event.get(ci)
            if event_id is None:
                event_id = next(self._ids)
                self._records[event_id] = EventRecord(event_id, quantum)
            record = self._records[event_id]
            record.snapshots.append(
                EventSnapshot(
                    quantum=quantum,
                    keywords=keywords,
                    rank=rank,
                    support=support,
                    num_edges=num_edges,
                )
            )
            next_alive[event_id] = keywords
        for event_id, record in self._records.items():
            if record.alive and event_id not in next_alive:
                record.died_quantum = quantum
        self._alive = next_alive

    # ------------------------------------------------------------- access

    def all_events(self) -> List[EventRecord]:
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)


__all__ = ["SnapshotEventTracker", "SnapshotCluster"]
