"""Trending-topics strawman: the motivation-section foil.

Twitter's trending topics report a keyword (or consecutive pair) once it is
popular *over a period of time* — the paper's introduction argues this needs
several thousand mentions and therefore cannot surface emerging events in
real time, and that single keywords are less informative than correlated
keyword clusters.  This baseline implements that policy so benchmarks can
measure the detection-lag gap directly.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError
from repro.stream.messages import Message


@dataclass(frozen=True)
class TrendingTopic:
    """A keyword that crossed the trending threshold."""

    keyword: str
    quantum: int
    window_count: int


class TrendingTopicsBaseline:
    """Windowed keyword-popularity trending detection.

    A keyword trends once its mention count over the sliding window reaches
    ``trend_threshold`` *and* it has stayed above ``sustain_fraction`` of
    that threshold for ``sustain_quanta`` consecutive quanta — popularity
    over a period of time, not a single burst.
    """

    def __init__(
        self,
        quantum_size: int = 160,
        window_quanta: int = 30,
        trend_threshold: int = 1000,
        sustain_quanta: int = 3,
        sustain_fraction: float = 0.5,
    ) -> None:
        if trend_threshold < 1:
            raise ConfigError("trend_threshold must be >= 1")
        if sustain_quanta < 1:
            raise ConfigError("sustain_quanta must be >= 1")
        self.quantum_size = quantum_size
        self.window_quanta = window_quanta
        self.trend_threshold = trend_threshold
        self.sustain_quanta = sustain_quanta
        self.sustain_fraction = sustain_fraction
        self._window: Deque[Counter] = deque()
        self._counts: Counter = Counter()
        self._hot_streak: Dict[str, int] = {}
        self._trending: Set[str] = set()
        self._quantum = -1

    def process_quantum(self, messages: Sequence[Message]) -> List[TrendingTopic]:
        """Advance one quantum; returns keywords that newly started trending."""
        self._quantum += 1
        counts: Counter = Counter()
        for message in messages:
            if message.tokens:
                counts.update(message.tokens)
        self._window.append(counts)
        self._counts.update(counts)
        if len(self._window) > self.window_quanta:
            old = self._window.popleft()
            self._counts.subtract(old)
            self._counts += Counter()
        new_topics: List[TrendingTopic] = []
        sustain_floor = self.trend_threshold * self.sustain_fraction
        for keyword, count in counts.items():
            window_count = self._counts[keyword]
            if window_count >= sustain_floor:
                self._hot_streak[keyword] = self._hot_streak.get(keyword, 0) + 1
            else:
                self._hot_streak.pop(keyword, None)
                self._trending.discard(keyword)
                continue
            if (
                window_count >= self.trend_threshold
                and self._hot_streak[keyword] >= self.sustain_quanta
                and keyword not in self._trending
            ):
                self._trending.add(keyword)
                new_topics.append(
                    TrendingTopic(keyword, self._quantum, window_count)
                )
        return new_topics

    def run(self, messages: Sequence[Message]) -> List[TrendingTopic]:
        """Process a whole stream; returns all trending onsets in order."""
        topics: List[TrendingTopic] = []
        for start in range(0, len(messages), self.quantum_size):
            batch = messages[start : start + self.quantum_size]
            topics.extend(self.process_quantum(batch))
        return topics

    def first_trending_message(self, keyword: str, topics: Sequence[TrendingTopic]) -> Optional[int]:
        """Stream position at which a keyword first trended (None = never)."""
        for topic in topics:
            if topic.keyword == keyword:
                return (topic.quantum + 1) * self.quantum_size
        return None


__all__ = ["TrendingTopicsBaseline", "TrendingTopic"]
