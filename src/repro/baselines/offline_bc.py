"""Offline biconnected clustering — the Section 7.3 comparator ([2]).

Bansal et al.'s blog-topic method identifies keyword clusters as biconnected
components.  The paper re-implements it "on exactly the same graph on which
SCP clusters are computed": after every quantum, the biconnected components
of the **entire AKG** are recomputed globally (the graph must be stable
during the computation, which is precisely the limitation the SCP method
removes).  Edges in no biconnected component are optionally reported as
clusters of size 2.

The observer attaches to a running :class:`~repro.core.engine.EventDetector`
so both methods see the identical AKG (same node/edge lifecycle), exactly
like the paper's setup.  Per-quantum wall time of the global recomputation is
recorded for the "SCP computes clusters 46% faster" comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple

from repro.baselines.tracking import SnapshotEventTracker
from repro.core.engine import EventDetector
from repro.core.ranking import cluster_rank
from repro.graph.biconnected import biconnected_components, component_nodes
from repro.graph.dynamic_graph import EdgeKey


@dataclass
class BcQuantumSnapshot:
    """One quantum's offline clustering and its cost."""

    quantum: int
    clusters: List[Tuple[FrozenSet[str], FrozenSet[EdgeKey]]]
    edge_clusters: List[EdgeKey]
    elapsed_seconds: float

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def num_with_edges(self) -> int:
        return len(self.clusters) + len(self.edge_clusters)


class OfflineBcObserver:
    """Recomputes global biconnected clusters after each detector quantum."""

    def __init__(
        self,
        detector: EventDetector,
        include_edge_clusters: bool = True,
        min_overlap: int = 2,
    ) -> None:
        self.detector = detector
        self.include_edge_clusters = include_edge_clusters
        self.tracker = SnapshotEventTracker(min_overlap=min_overlap)
        self.tracker_with_edges = SnapshotEventTracker(min_overlap=1)
        self.snapshots: List[BcQuantumSnapshot] = []
        self.total_seconds = 0.0

    def observe_quantum(self) -> BcQuantumSnapshot:
        """Run the offline clustering on the detector's current AKG.

        Call once after each ``detector.process_quantum`` — by then the AKG
        reflects the quantum, matching the paper's "after each quantum, the
        BCs are computed on the entire graph in an offline manner".
        """
        graph = self.detector.graph
        quantum = self.detector.current_quantum
        start = time.perf_counter()
        components = biconnected_components(graph)
        clusters: List[Tuple[FrozenSet[str], FrozenSet[EdgeKey]]] = []
        edge_clusters: List[EdgeKey] = []
        for component in components:
            if len(component) == 1:
                edge_clusters.append(next(iter(component)))
            else:
                clusters.append(
                    (
                        frozenset(str(n) for n in component_nodes(component)),
                        frozenset(component),
                    )
                )
        elapsed = time.perf_counter() - start
        self.total_seconds += elapsed
        snapshot = BcQuantumSnapshot(
            quantum=quantum,
            clusters=clusters,
            edge_clusters=edge_clusters,
            elapsed_seconds=elapsed,
        )
        self.snapshots.append(snapshot)
        self._track(snapshot)
        return snapshot

    # ------------------------------------------------------------ tracking

    def _ranked(
        self, nodes: FrozenSet[str], edges: FrozenSet[EdgeKey]
    ) -> Tuple[FrozenSet[str], float, float, int]:
        """Rank an offline cluster with the same Section 6 function."""
        builder = self.detector.builder
        graph = self.detector.graph
        weights = builder.node_weights(nodes)
        correlations = {e: graph.edge_weight(e[0], e[1]) for e in edges}
        rank = cluster_rank(nodes, edges, weights, correlations)
        support = float(sum(weights.values()))
        return (nodes, rank, support, len(edges))

    def _track(self, snapshot: BcQuantumSnapshot) -> None:
        ranked = [self._ranked(n, e) for n, e in snapshot.clusters]
        self.tracker.observe_quantum(snapshot.quantum, ranked)
        if self.include_edge_clusters:
            with_edges = list(ranked)
            for u, v in snapshot.edge_clusters:
                nodes = frozenset((str(u), str(v)))
                with_edges.append(self._ranked(nodes, frozenset(((u, v),))))
            self.tracker_with_edges.observe_quantum(snapshot.quantum, with_edges)

    # ------------------------------------------------------------- access

    def events(self, with_edge_clusters: bool = False):
        """Event records of the offline method (± size-2 edge clusters)."""
        tracker = self.tracker_with_edges if with_edge_clusters else self.tracker
        return tracker.all_events()


__all__ = ["OfflineBcObserver", "BcQuantumSnapshot"]
