"""The default extractor: microblog text tokenized into keywords.

This is the paper's original ingestion path, unchanged in behaviour: a
message's pre-extracted ``tokens`` pass through untouched, raw ``text`` is
tokenized by :func:`repro.text.tokenize.tokenize` (or a caller-supplied
tokenizer, e.g. a :class:`repro.text.synonyms.SynonymNormalizer`-wrapped
one).  The golden parity suite (``tests/test_extractor_parity.py``) pins
this extractor's end-to-end output to the pre-refactor pipeline bit for
bit.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.text.tokenize import tokenize


class KeywordExtractor:
    """Tokenize message text into keyword entities (the classic path)."""

    name = "keyword"
    textual = True

    def __init__(self, tokenizer=None) -> None:
        """``tokenizer`` overrides the default text tokenizer.  Callables
        cannot be checkpointed or shipped to worker processes, so a custom
        tokenizer marks the extractor ``custom`` — the session keeps the
        serial extract stage and demands the same object back on resume."""
        self.custom = tokenizer is not None
        self.tokenizer = tokenizer if tokenizer is not None else tokenize

    def entities(self, message) -> Tuple[str, ...]:
        return message.keyword_tuple(self.tokenizer)

    def options(self) -> Dict[str, Any]:
        return {}


__all__ = ["KeywordExtractor"]
