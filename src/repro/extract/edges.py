"""Raw actor–entity interaction streams: the edge-stream adapter.

The most direct instantiation of the paper's model: the stream *is*
already a sequence of actor–entity interactions — a buyer and the products
in one basket (co-purchase), a paper and the works it cites (citation), a
flow source and the hosts it touched.  No extraction logic is needed at
all: the record's entity list passes through verbatim, and the engine's
spatial correlation (distinct actors per entity per quantum, Jaccard over
windowed actor sets) does the rest — exactly the generic
entity-co-occurrence graph maintained by Angel et al.'s story-identification
system.

Records carry their entities either in the ``fields`` payload (under
``entities_field``, default ``"entities"``) or — the compact wire form —
as the message's pre-extracted ``tokens``.  Both forms are equivalent;
the JSONL trace format uses ``"k"`` (tokens) for exactly this reason.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.errors import ConfigError


class EdgeStreamAdapter:
    """Pass an interaction record's entity list through unchanged."""

    name = "edges"
    textual = False
    custom = False

    def __init__(self, entities_field: str = "entities") -> None:
        if not entities_field or not isinstance(entities_field, str):
            raise ConfigError(
                f"entities_field must be a non-empty string, "
                f"got {entities_field!r}"
            )
        self.entities_field = entities_field

    def entities(self, message) -> Tuple[str, ...]:
        payload = message.fields
        if payload:
            value = payload.get(self.entities_field)
            if value is not None:
                values = (
                    value if isinstance(value, (list, tuple)) else (value,)
                )
                return tuple(s for v in values if (s := str(v)))
        if message.tokens is not None:
            # Coerce like the fields path: the engine's string-entity
            # contract (shard hashing, sorted checkpoints) and the
            # "both forms are equivalent" promise both need one canonical
            # form — {"k": [1001]} and {"entities": [1001]} must land on
            # the same graph node.
            return tuple(s for v in message.tokens if (s := str(v)))
        return ()

    def options(self) -> Dict[str, Any]:
        return {"entities_field": self.entities_field}


__all__ = ["EdgeStreamAdapter"]
