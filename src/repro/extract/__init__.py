"""repro.extract — pluggable entity extraction (ingestion front-end).

The engine discovers dense clusters in *any* highly dynamic actor–entity
graph; this package is the seam that decides what the entities are.  An
:class:`EntityExtractor` turns one stream record into a tuple of opaque
entity tokens; everything downstream (window id sets, burstiness, sketches,
AKG, clustering, ranking, tracking, checkpoints) is entity-agnostic.

Built-ins (registered on import, selectable via
``DetectorConfig(extractor=..., extractor_options=...)`` and
``detect --extractor``):

``keyword``  :class:`KeywordExtractor`  — tokenized microblog text (the
             paper's workload; the default, bit-identical to the
             pre-extractor pipeline);
``fields``   :class:`FieldExtractor`    — categorical field values of
             structured records (hashtag/mention/tag streams, JSONL logs);
``edges``    :class:`EdgeStreamAdapter` — raw actor–entity interaction
             streams (co-purchase, citation, flow) passed through verbatim.

The extractor contract (purity, string entities, checkpoint identity) is
documented in :mod:`repro.extract.base` and DESIGN.md Section 8; the
README's "Bring your own stream" section shows a minimal custom extractor.
"""

from repro.extract.base import (
    Entity,
    EntityExtractor,
    extractor_names,
    extractor_spec,
    is_reconstructible,
    make_extractor,
    register_extractor,
)
from repro.extract.edges import EdgeStreamAdapter
from repro.extract.keyword import KeywordExtractor
from repro.extract.structured import FieldExtractor

register_extractor("keyword", KeywordExtractor)
register_extractor("fields", FieldExtractor)
register_extractor("edges", EdgeStreamAdapter)

__all__ = [
    "Entity",
    "EntityExtractor",
    "KeywordExtractor",
    "FieldExtractor",
    "EdgeStreamAdapter",
    "register_extractor",
    "extractor_names",
    "make_extractor",
    "extractor_spec",
    "is_reconstructible",
]
