"""Structured-field extraction for non-text streams.

Many dynamic-graph sources are not prose: JSONL logs with categorical
fields, tweets reduced to their hashtags/mentions, sensor records with
tagged readings.  :class:`FieldExtractor` reads named fields from a
record's ``fields`` payload and emits each value as one entity token —
no tokenisation, no stop words, no noun filter (``textual = False``).

Field values may be scalars or lists; every value is rendered with
``str``.  By default entities are namespaced as ``"<field>:<value>"`` so
values from different fields can never collide into one graph node
(``tag:apple`` and ``product:apple`` are different signals); pass
``include_field=False`` for sources whose fields already share one
namespace.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.errors import ConfigError


class FieldExtractor:
    """Emit categorical field values of structured records as entities."""

    name = "fields"
    textual = False
    custom = False

    def __init__(
        self,
        fields: Sequence[str] = ("tags",),
        include_field: bool = True,
        separator: str = ":",
    ) -> None:
        fields = tuple(fields)
        if not fields or not all(
            isinstance(f, str) and f for f in fields
        ):
            raise ConfigError(
                f"fields must be a non-empty sequence of field names, "
                f"got {fields!r}"
            )
        if not isinstance(separator, str):
            raise ConfigError(f"separator must be a string, got {separator!r}")
        self.fields = fields
        self.include_field = bool(include_field)
        self.separator = separator

    def entities(self, message) -> Tuple[str, ...]:
        payload = message.fields
        if not payload:
            return ()
        out = []
        for name in self.fields:
            value = payload.get(name)
            if value is None:
                continue
            values = value if isinstance(value, (list, tuple)) else (value,)
            for item in values:
                token = str(item)
                if not token:
                    continue
                if self.include_field:
                    token = f"{name}{self.separator}{token}"
                out.append(token)
        return tuple(out)

    def options(self) -> Dict[str, Any]:
        return {
            "fields": list(self.fields),
            "include_field": self.include_field,
            "separator": self.separator,
        }


__all__ = ["FieldExtractor"]
