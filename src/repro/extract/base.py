"""The entity-extractor contract and the extractor registry.

The detection engine is *entity-agnostic*: every layer downstream of
ingestion — the windowed id sets, burstiness automaton, MinHash sketches,
the AKG builder, cluster maintenance, ranking, tracking — operates on
**opaque entity tokens** correlated by the actors that produced them.  The
Twitter-keyword workload of the source paper is one instantiation: entities
are tokenized keywords, actors are tweet authors.  Co-purchase streams
(actor = buyer, entities = products), citation streams (actor = citing
paper, entities = cited works) or categorical log records (actor = client,
entities = tagged field values) run through the identical engine; only the
first pipeline stage — *extraction* — differs.

An :class:`EntityExtractor` maps one stream record
(:class:`~repro.stream.messages.Message`: ``user_id`` is the actor id, the
payload is ``text`` / ``tokens`` / ``fields``) to a tuple of entity
tokens.  The contract an implementation must honour (DESIGN.md Section 8):

purity / determinism
    ``entities(message)`` must be a pure function of the message (and the
    extractor's *construction options*): no I/O, no clocks, no mutable
    state.  Every differential guarantee of the engine — oracle
    equivalence, shard invariance, bit-identical resume — quantifies over
    re-running extraction on the same records.

string entities, shard-hash stability
    Entities must be ``str``.  The sharded front-end routes entities by a
    stable blake2b hash of the token (DESIGN.md Section 7), and checkpoints
    serialize them sorted — both need one canonical string form per entity.

checkpoint identity
    A registered extractor is reconstructed on resume from its
    ``(name, options())`` spec recorded in the checkpoint; ``options()``
    must therefore return a JSON-serializable mapping that rebuilds an
    extractor with identical behaviour.  Extractors that close over
    function-valued state (e.g. a custom tokenizer callable) set
    ``custom = True``: sessions still checkpoint, but resuming demands the
    same object back, exactly like custom noun taggers.

The registry maps extractor names to factories so configs, checkpoints and
worker processes can all resolve an extractor by value
(:func:`make_extractor`).  Built-ins register on package import; client
code may :func:`register_extractor` its own before opening sessions.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.errors import ConfigError

Entity = str
"""One opaque entity token — a graph-node candidate.  Always a string (the
shard router hashes the UTF-8 encoding; checkpoints sort by it)."""


@runtime_checkable
class EntityExtractor(Protocol):
    """Stage-1 contract: one stream record in, entity tokens out."""

    name: str
    """Registry identity; recorded in checkpoints for reconstruction."""

    textual: bool
    """Whether entities are natural-language words.  The Section 7.2.2
    noun filter only applies to textual extractors — a product id or a
    tagged field value has no part of speech."""

    custom: bool
    """True when the extractor holds function-valued state the registry
    cannot reconstruct (sessions then demand the same object on resume)."""

    def entities(self, message) -> Tuple[Entity, ...]:
        """Entity tokens of one record, in payload order (may repeat)."""
        ...

    def options(self) -> Dict[str, Any]:
        """JSON-serializable construction options; with ``name`` this is
        the spec that rebuilds the extractor (checkpoints, worker pools)."""
        ...


_REGISTRY: Dict[str, Callable[..., EntityExtractor]] = {}


def register_extractor(name: str, factory: Callable[..., EntityExtractor]) -> None:
    """Register ``factory`` under ``name`` (``factory(**options)``).

    Re-registering a name replaces the factory — deliberate, so tests and
    applications can shadow a built-in with an instrumented variant.
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"extractor name must be a non-empty string: {name!r}")
    _REGISTRY[name] = factory


def extractor_names() -> List[str]:
    """Registered extractor names, sorted (CLI choices, error messages)."""
    return sorted(_REGISTRY)


def make_extractor(
    name: str, options: Optional[Mapping[str, Any]] = None
) -> EntityExtractor:
    """Build a registered extractor from its ``(name, options)`` spec.

    Raises :class:`~repro.errors.ConfigError` for an unknown name or
    options the factory rejects — config validation, checkpoint restore
    and worker-process bring-up all funnel through here, so the error
    message names the valid choices.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown extractor {name!r}; registered extractors: "
            f"{', '.join(extractor_names()) or '(none)'}"
        )
    try:
        return factory(**dict(options or {}))
    except ConfigError:
        raise
    except TypeError as exc:
        raise ConfigError(
            f"invalid options for extractor {name!r}: {exc}"
        ) from exc


def extractor_spec(extractor: EntityExtractor) -> Dict[str, Any]:
    """The ``{"name", "options"}`` spec that reconstructs ``extractor``."""
    return {"name": extractor.name, "options": dict(extractor.options())}


def is_reconstructible(extractor: EntityExtractor) -> bool:
    """Whether ``extractor`` can be rebuilt by value from its spec.

    True for registered, non-``custom`` extractors — the precondition for
    recording it in checkpoints and shipping it to worker processes.
    """
    return not getattr(extractor, "custom", False) and extractor.name in _REGISTRY


__all__ = [
    "Entity",
    "EntityExtractor",
    "register_extractor",
    "extractor_names",
    "make_extractor",
    "extractor_spec",
    "is_reconstructible",
]
