"""Configuration for the event-detection pipeline.

The tunable parameters mirror Table 2 of the paper:

============================  =======================  =================
Parameter                     Paper symbol             Nominal value
============================  =======================  =================
``quantum_size``              |Delta| (quantum)        160 messages
``high_state_threshold``      |theta| (HST)            4 user ids/quantum
``ec_threshold``              |gamma| (EC threshold)   0.20
``window_quanta``             ``w``                    30 quanta
============================  =======================  =================

The number of MinHash values kept per keyword follows Section 3.2.2:
``p = min(theta / 2, 1 / gamma)`` (at least 1).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping

from repro.errors import ConfigError
from repro.extract import make_extractor


@dataclass(frozen=True)
class DetectorConfig:
    """Immutable parameter bundle for :class:`repro.core.engine.EventDetector`.

    Parameters
    ----------
    quantum_size:
        Number of messages per quantum (the unit at which the sliding window
        advances).  The paper's experiments define quanta in message counts.
    window_quanta:
        Number of quanta retained in the sliding window (``w``).
    high_state_threshold:
        Minimum number of *distinct users* that must use a keyword within one
        quantum for the keyword to enter the high state (``theta``).
    ec_threshold:
        Minimum edge correlation (Jaccard coefficient of the window user-id
        sets) for an AKG edge (``gamma``).
    minhash_size:
        Number of minimum hash values kept per keyword.  ``None`` (default)
        derives ``p = max(1, min(theta // 2, round(1 / gamma)))`` per the
        paper; an explicit positive integer overrides the derivation.
    use_minhash_filter:
        When True (default), new-edge candidate pairs must share at least one
        of their ``p`` MinHash values before the exact EC is computed.  When
        False, EC is computed for every pair of newly bursty keywords (the
        exact, slower variant used as an ablation baseline).
    min_cluster_size:
        Minimum number of nodes for a reported cluster.  Short-cycle atoms
        have at least 3 nodes, so values below 3 have no effect.
    node_grace_quanta:
        A non-clustered AKG node is lazily dropped once it has not been bursty
        for this many consecutive quanta.  ``1`` reproduces the paper's lazy
        update; larger values add hysteresis.
    rank_threshold_scale:
        Scale factor applied to the minimum achievable rank of a cluster of
        size N when filtering spurious events (Section 7.2.2, filter 1).
    require_noun:
        Drop clusters containing no noun keyword (Section 7.2.2, filter 2).
    max_tokens_per_message:
        Entities beyond this per record are ignored.  Microblog posts are
        length-capped (a 140-character tweet holds ~25 words), and the cap
        also bounds the per-record pair fan-out a hostile flooder could
        inject into the graph.  Applies to every extractor.
    extractor:
        Name of the registered :class:`~repro.extract.base.EntityExtractor`
        the ingestion stage runs (:mod:`repro.extract`).  ``"keyword"``
        (default) tokenizes message text — the paper's workload, proven
        bit-identical to the pre-extractor pipeline; ``"fields"`` reads
        categorical fields of structured records; ``"edges"`` passes raw
        actor–entity interaction records through verbatim.  Validated
        against the registry (including ``extractor_options``) at
        construction.
    extractor_options:
        Keyword options handed to the extractor factory (e.g.
        ``{"fields": ["tags"]}`` for the structured-field extractor).  Must
        be JSON-serializable: the pair ``(extractor, extractor_options)``
        is the extractor's checkpoint identity and the spec worker
        processes rebuild it from.
    track_ckg_stats:
        Maintain full CKG node/edge counts for the Section 7.4 reduction
        study.  Costs memory proportional to distinct co-occurring pairs in
        the window; off by default.
    oracle_akg:
        Run the AKG stage on the from-scratch oracle components
        (:mod:`repro.akg.oracle`): window id sets, sketches and the
        dead-node sweep are recomputed over the full vocabulary every
        quantum.  Semantically identical to the fast path and O(window x
        vocabulary) slower — the differential-verification baseline
        (``detect --oracle-akg``).
    oracle_ranking:
        Run the rank stage from scratch every quantum instead of through the
        incremental rank cache — the PR-1 verification baseline
        (``detect --oracle-ranking``).
    seed:
        Seed for the MinHash hash-function salt; fixed for reproducibility.
    workers:
        Number of parallel workers for the tokenize and AKG-update stages
        (:mod:`repro.parallel`).  ``1`` (default) runs the classic serial
        pipeline.  A string ``"host:port,host:port,..."`` instead selects
        the remote transport: each endpoint is a ``repro shard-worker``
        daemon hosting that worker's shard run over TCP (DESIGN.md
        Section 12).  Workers are an *execution* parameter: results are
        bit-identical for any value or transport, and checkpoints neither
        record it nor depend on it (resume with any worker count).
    shard_count:
        Number of contiguous keyword hash ranges the window state is
        partitioned into.  ``None`` derives one shard per worker.  Like
        ``workers`` this is execution-only: any shard count produces
        bit-identical results, because every cross-keyword computation
        happens in the deterministic merge (DESIGN.md Section 7).
    backend:
        Hot-path implementation selector (DESIGN.md Section 9).
        ``"reference"`` (default) runs the original per-message object
        pipeline; ``"batched"`` extracts whole quanta into interned flat
        columns and feeds the array-backed window indexes — bit-identical
        reports/events/checkpoints, several times the throughput.  Like
        ``workers`` this is execution-only: checkpoints neither record it
        nor depend on it, so a stream snapshotted under one backend resumes
        under the other.  ``oracle_akg`` forces the reference path (the
        oracle components *are* the reference).
    """

    quantum_size: int = 160
    window_quanta: int = 30
    high_state_threshold: int = 4
    ec_threshold: float = 0.20
    minhash_size: int | None = None
    use_minhash_filter: bool = True
    min_cluster_size: int = 3
    node_grace_quanta: int = 1
    rank_threshold_scale: float = 1.0
    require_noun: bool = True
    max_tokens_per_message: int = 32
    extractor: str = "keyword"
    # hash=False: the options dict would break the frozen dataclass's
    # generated __hash__; configs differing only here hash alike (legal),
    # equality still compares the full options.
    extractor_options: Mapping[str, Any] = field(
        default_factory=dict, hash=False
    )
    track_ckg_stats: bool = False
    oracle_akg: bool = False
    oracle_ranking: bool = False
    seed: int = 0x5C9C1E
    workers: int | str = 1
    shard_count: int | None = None
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.quantum_size < 1:
            raise ConfigError(f"quantum_size must be >= 1, got {self.quantum_size}")
        if self.window_quanta < 1:
            raise ConfigError(f"window_quanta must be >= 1, got {self.window_quanta}")
        if self.high_state_threshold < 1:
            raise ConfigError(
                "high_state_threshold must be >= 1, got "
                f"{self.high_state_threshold}"
            )
        if not 0.0 < self.ec_threshold <= 1.0:
            raise ConfigError(
                f"ec_threshold must be in (0, 1], got {self.ec_threshold}"
            )
        if self.minhash_size is not None and self.minhash_size < 1:
            raise ConfigError(f"minhash_size must be >= 1, got {self.minhash_size}")
        if self.min_cluster_size < 2:
            raise ConfigError(
                f"min_cluster_size must be >= 2, got {self.min_cluster_size}"
            )
        if self.node_grace_quanta < 0:
            raise ConfigError(
                f"node_grace_quanta must be >= 0, got {self.node_grace_quanta}"
            )
        if self.rank_threshold_scale < 0:
            raise ConfigError(
                "rank_threshold_scale must be >= 0, got "
                f"{self.rank_threshold_scale}"
            )
        if self.max_tokens_per_message < 1:
            raise ConfigError(
                "max_tokens_per_message must be >= 1, got "
                f"{self.max_tokens_per_message}"
            )
        if not isinstance(self.extractor_options, Mapping):
            raise ConfigError(
                "extractor_options must be a mapping, got "
                f"{self.extractor_options!r}"
            )
        # Normalize to a private deep copy via a JSON round trip: the spec
        # is the extractor's checkpoint identity, so it must be both
        # JSON-serializable (proven here) and immune to the caller later
        # mutating a shared nested list/dict.  Then prove the spec actually
        # constructs: an unknown name or rejected options must fail at
        # config time, not mid-stream.
        try:
            options = json.loads(json.dumps(dict(self.extractor_options)))
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"extractor_options must be JSON-serializable: {exc}"
            ) from exc
        object.__setattr__(self, "extractor_options", options)
        make_extractor(self.extractor, self.extractor_options)
        if isinstance(self.workers, str):
            endpoints = [
                part.strip() for part in self.workers.split(",") if part.strip()
            ]
            if not endpoints:
                raise ConfigError(
                    "workers given as a string must list shard worker "
                    "endpoints: 'host:port,host:port,...'"
                )
            for endpoint in endpoints:
                host, _, port_text = endpoint.rpartition(":")
                if not host or not port_text.isdigit():
                    raise ConfigError(
                        f"invalid shard worker endpoint {endpoint!r}; "
                        f"expected 'host:port'"
                    )
            # Store the normalized comma-joined form so equal endpoint
            # lists compare (and hash) equal however they were spelled.
            object.__setattr__(self, "workers", ",".join(endpoints))
        elif self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.shard_count is not None and self.shard_count < 1:
            raise ConfigError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )
        if self.oracle_akg and (
            self.worker_count > 1 or self.shard_count is not None
        ):
            raise ConfigError(
                "oracle_akg is a serial verification baseline; it cannot be "
                "combined with workers/shard_count"
            )
        if self.backend not in ("reference", "batched"):
            raise ConfigError(
                "backend must be 'reference' or 'batched', got "
                f"{self.backend!r}"
            )
        if self.oracle_akg and self.backend != "reference":
            raise ConfigError(
                "oracle_akg runs the reference components by definition; "
                "it cannot be combined with backend='batched'"
            )

    @property
    def effective_minhash_size(self) -> int:
        """Number of MinHash values per keyword (``p`` of Section 3.2.2)."""
        if self.minhash_size is not None:
            return self.minhash_size
        derived = min(
            self.high_state_threshold // 2,
            int(math.ceil(1.0 / self.ec_threshold)),
        )
        return max(1, derived)

    @property
    def window_messages(self) -> int:
        """Total messages covered by the sliding window."""
        return self.quantum_size * self.window_quanta

    @property
    def worker_endpoints(self) -> tuple[str, ...] | None:
        """Remote shard worker ``host:port`` endpoints, or ``None`` for
        local workers (``workers`` given as an int)."""
        if isinstance(self.workers, str):
            return tuple(self.workers.split(","))
        return None

    @property
    def worker_count(self) -> int:
        """Number of shard workers, whether local or remote."""
        endpoints = self.worker_endpoints
        return len(endpoints) if endpoints is not None else self.workers

    @property
    def effective_shard_count(self) -> int:
        """Keyword hash ranges the sharded front-end partitions into."""
        return (
            self.shard_count
            if self.shard_count is not None
            else self.worker_count
        )

    @property
    def sharded(self) -> bool:
        """Whether the session runs the keyword-range-sharded front-end."""
        return (
            self.worker_count > 1
            or self.shard_count is not None
            or self.worker_endpoints is not None
        )

    @property
    def batched(self) -> bool:
        """Whether the session runs the batched hot path (Section 9)."""
        return self.backend == "batched"

    EXECUTION_FIELDS = ("workers", "shard_count", "backend")
    """Fields that select *how* the pipeline executes, not *what* it
    computes.  Session checkpoints strip them (results are bit-identical for
    any value), so a stream snapshotted under 4 workers resumes under any
    worker count — and one snapshotted under either hot-path backend resumes
    under the other — see ``DetectorSession.snapshot``."""

    def with_overrides(self, **overrides: Any) -> "DetectorConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable mapping of every field.

        The inverse of :meth:`from_dict`; session checkpoints embed this so
        a resumed stream runs under the identical parameters.  The options
        mapping is deep-copied so callers cannot mutate the frozen config
        through the returned dict.
        """
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["extractor_options"] = json.loads(
            json.dumps(data["extractor_options"])
        )
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DetectorConfig":
        """Build a config from :meth:`to_dict` output (validated again).

        Unknown keys raise :class:`~repro.errors.ConfigError` — a checkpoint
        written by a newer version with new parameters must fail loudly, not
        silently drop semantics.  Missing keys fall back to the defaults so
        older checkpoints keep loading.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"unknown config fields: {', '.join(unknown)}")
        return cls(**dict(data))


NOMINAL_CONFIG = DetectorConfig()
"""The Table 2 nominal parameter setting."""


__all__ = ["DetectorConfig", "NOMINAL_CONFIG"]
