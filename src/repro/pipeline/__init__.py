"""repro.pipeline — the staged quantum pipeline as composable objects.

The six per-quantum engine stages (``extract → AKG update → maintain →
propagate → rank → report``) live here as typed :class:`Stage` objects
communicating through a :class:`QuantumContext` (see DESIGN.md Section 6).
:mod:`repro.api` drives a :class:`Pipeline` of these stages inside a
long-lived session; the legacy :class:`repro.core.engine.EventDetector`
facade delegates to the same machinery.
"""

from repro.pipeline.report_index import FilterPredicate, ThresholdIndex
from repro.pipeline.reports import QuantumReport, ReportedEvent, StageTimings
from repro.pipeline.stages import (
    AkgUpdateStage,
    ExtractStage,
    MaintainStage,
    Pipeline,
    PropagateStage,
    QuantumContext,
    RankStage,
    ReportStage,
    Stage,
    build_stages,
)

__all__ = [
    "QuantumReport",
    "ReportedEvent",
    "StageTimings",
    "ThresholdIndex",
    "FilterPredicate",
    "QuantumContext",
    "Stage",
    "ExtractStage",
    "AkgUpdateStage",
    "MaintainStage",
    "PropagateStage",
    "RankStage",
    "ReportStage",
    "Pipeline",
    "build_stages",
]
