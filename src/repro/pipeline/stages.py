"""The staged quantum pipeline as composable, typed ``Stage`` objects.

The engine used to run its six per-quantum stages — ``extract → AKG update
→ maintain → propagate → rank → report`` — as inline blocks of
``EventDetector.process_quantum``.  This module extracts each stage into a
small object behind the :class:`Stage` protocol so stages can be swapped or
wrapped (e.g. with extra instrumentation) without touching the engine.
The intended-seam promise has been cashed in twice: with
``config.workers > 1`` the session swaps stages 1–2 for the
entity-range-sharded :class:`~repro.parallel.stages.ShardedExtractStage` /
:class:`~repro.parallel.stages.ShardedAkgUpdateStage`, which fan the
entity-local work across a worker pool and merge deterministically —
bit-identical results for any worker count (DESIGN.md Section 7); and the
first stage is parameterised by an
:class:`~repro.extract.base.EntityExtractor`, so the same pipeline runs
tokenized microblog text, structured field streams, or raw actor–entity
interaction streams (DESIGN.md Section 8).

Data flows between stages through a mutable :class:`QuantumContext`: each
stage consumes the typed products of its predecessors (the per-quantum
actor/entity mappings, the :class:`~repro.core.changelog.ChangeBatch`
drained from the maintainer, the ranked-result list) and is responsible for
writing its own slot(s) of :class:`~repro.pipeline.reports.StageTimings` —
timing and the oracle toggles are per-stage wiring now, not engine code.

One physical-execution note: cluster maintenance (Section 5) runs *inline*
inside the AKG update — every edge/node mutation immediately re-glues the
decomposition — so :class:`AkgUpdateStage` performs both stages' work.
:class:`MaintainStage` is the accounting boundary: it splits the fused wall
time using the maintainer's clustering clock, and is the seam where a future
deferred-maintenance implementation would slot in.

``build_stages`` wires the default six-stage pipeline from the engine's
components; :class:`Pipeline` runs any stage list over a context.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

from repro.errors import PipelineError
from repro.pipeline.report_index import ThresholdIndex
from repro.pipeline.reports import QuantumReport, ReportedEvent, StageTimings
from repro.stream.window import actor_entities_of_quantum, invert_actor_entities

if TYPE_CHECKING:  # type-only: the stages hold these by duck-typed reference
    from repro.akg.builder import AkgBuilder, AkgQuantumStats
    from repro.akg.ckg_stats import CkgStatsTracker
    from repro.core.changelog import ChangeBatch
    from repro.core.clusters import Cluster
    from repro.core.events import EventTracker
    from repro.core.incremental import IncrementalRanker
    from repro.core.maintenance import ClusterMaintainer
    from repro.stream.messages import Message


@dataclass
class QuantumContext:
    """Mutable carrier of one quantum's data as it flows through the stages.

    Stages read the fields earlier stages produced and fill their own; the
    session turns the final ``report`` into the public
    :class:`~repro.pipeline.reports.QuantumReport`.  ``scratch`` holds
    stage-private hand-offs (e.g. the fused AKG/maintain wall split) without
    widening the typed surface.
    """

    quantum: int
    messages: Sequence[Message]
    timings: StageTimings = field(default_factory=StageTimings)
    actor_entities: Optional[Dict] = None
    entity_actors: Optional[Dict] = None
    akg_stats: Optional[AkgQuantumStats] = None
    batch: Optional[ChangeBatch] = None
    dirty: Optional[Set[int]] = None
    ranked: Optional[List[Tuple[Cluster, float, float]]] = None
    report: Optional[QuantumReport] = None
    scratch: Dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class Stage(Protocol):
    """One step of the per-quantum pipeline.

    A stage owns its components, reads/writes the :class:`QuantumContext`,
    and records its wall time in its own :class:`StageTimings` slot(s).
    Implementations must be deterministic functions of the context and their
    own state for the pipeline's differential guarantees to hold.
    """

    name: str

    def run(self, ctx: QuantumContext) -> None:
        """Execute the stage against ``ctx`` in place."""
        ...


class ExtractStage:
    """Stage 1: reduce the quantum's records to actor/entity mappings.

    The extractor is the workload seam (DESIGN.md Section 8): a
    :class:`~repro.extract.keyword.KeywordExtractor` reproduces the paper's
    tokenize stage bit for bit; structured-field and edge-stream extractors
    open non-text workloads without touching any later stage.
    """

    name = "extract"

    def __init__(
        self,
        extractor,
        max_entities_per_record: int,
        ckg_stats: Optional[CkgStatsTracker] = None,
    ) -> None:
        self.extractor = extractor
        self.max_entities_per_record = max_entities_per_record
        self.ckg_stats = ckg_stats

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        ctx.actor_entities = actor_entities_of_quantum(
            ctx.messages,
            self.extractor,
            max_entities_per_record=self.max_entities_per_record,
        )
        ctx.entity_actors = invert_actor_entities(ctx.actor_entities)
        if self.ckg_stats is not None:
            self.ckg_stats.add_quantum(ctx.quantum, ctx.actor_entities)
        ctx.timings.extract = time.perf_counter() - t


class AkgUpdateStage:
    """Stages 2+3 (fused execution): AKG maintenance driving clustering.

    The builder performs the Section 3 window/graph updates and, through the
    maintainer, the Section 5 cluster maintenance inline.  The stage stashes
    the maintainer's clustering-clock delta in ``ctx.scratch`` for
    :class:`MaintainStage` to account; until that stage runs, the whole
    fused wall time is attributed to ``akg_update``.
    """

    name = "akg_update"

    def __init__(self, builder: AkgBuilder, maintainer: ClusterMaintainer) -> None:
        self.builder = builder
        self.maintainer = maintainer

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        maintain_before = self.maintainer.clustering_seconds
        ctx.akg_stats = self.builder.process_quantum(
            ctx.quantum, ctx.entity_actors
        )
        ctx.scratch["maintain_seconds"] = (
            self.maintainer.clustering_seconds - maintain_before
        )
        ctx.timings.akg_update = time.perf_counter() - t


class MaintainStage:
    """Stage 3 accounting: attribute the clustering share of the AKG wall.

    Cluster maintenance physically runs inside :class:`AkgUpdateStage`
    (every mutation re-glues immediately); this stage moves the measured
    clustering-clock share out of ``akg_update`` into ``maintain`` so the
    per-stage breakdown matches the paper's cost model.  Replacing this
    stage is the seam for a deferred/batched maintenance implementation.
    """

    name = "maintain"

    def __init__(self, maintainer: ClusterMaintainer) -> None:
        self.maintainer = maintainer

    def run(self, ctx: QuantumContext) -> None:
        share = ctx.scratch.pop("maintain_seconds", 0.0)
        ctx.timings.maintain = share
        ctx.timings.akg_update -= share


class PropagateStage:
    """Stage 4: drain the change log and dirty the perturbed clusters."""

    name = "propagate"

    def __init__(
        self, maintainer: ClusterMaintainer, ranker: IncrementalRanker
    ) -> None:
        self.maintainer = maintainer
        self.ranker = ranker

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        ctx.batch = self.maintainer.drain_changes()
        ctx.dirty = self.ranker.apply(ctx.batch)
        ctx.timings.propagate = time.perf_counter() - t


class RankStage:
    """Stage 5: re-rank exactly the dirty clusters (or all, in oracle mode).

    The oracle toggle lives on the wrapped
    :class:`~repro.core.incremental.IncrementalRanker` — swapping this stage
    for one built around an oracle ranker flips the whole pipeline to the
    from-scratch verification baseline.
    """

    name = "rank"

    def __init__(self, ranker: IncrementalRanker) -> None:
        self.ranker = ranker

    @property
    def oracle(self) -> bool:
        return self.ranker.oracle

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        ctx.ranked = self.ranker.rank_all()
        ctx.timings.rank = time.perf_counter() - t


class ReportStage:
    """Stage 6: lifecycle tracking plus churn-proportional report assembly.

    Filter verdicts live in a :class:`ThresholdIndex` keyed by cluster id;
    per quantum only the ranker's ``last_recomputed`` / ``last_removed``
    delta is re-filtered, and the report's ``new_event_ids`` /
    ``dead_event_ids`` fall out of the same delta — no per-quantum scan of
    the live result list (DESIGN.md Section 6).
    """

    name = "report"

    def __init__(
        self,
        tracker: EventTracker,
        ranker: IncrementalRanker,
        index: ThresholdIndex,
    ) -> None:
        self.tracker = tracker
        self.ranker = ranker
        self.index = index

    @staticmethod
    def make_event(
        cluster: Cluster, rank: float, support: float
    ) -> ReportedEvent:
        """Freeze one ranked cluster into its reportable snapshot."""
        return ReportedEvent(
            event_id=cluster.cluster_id,
            keywords=frozenset(str(n) for n in cluster.nodes),
            rank=rank,
            support=support,
            size=cluster.size,
            num_edges=cluster.num_edges,
            born_quantum=cluster.born_quantum,
        )

    def seed(self, ranked: List[Tuple[Cluster, float, float]]) -> None:
        """Rebuild the index from a full ranking (checkpoint restore)."""
        self.index.rebuild(
            [self.make_event(c, rank, support) for c, rank, support in ranked]
        )

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        # Histories ride the same edit script as the threshold index: only
        # recomputed/removed events are touched (never the live population).
        self.tracker.observe_edits(ctx.quantum, self.ranker, ctx.batch)
        new_ids: Set[int] = set()
        dead_ids: Set[int] = set()
        for cid in self.ranker.last_removed:
            if self.index.remove(cid):
                dead_ids.add(cid)
        for cid in sorted(self.ranker.last_recomputed):
            cluster, rank, support = self.ranker.result(cid)
            if self.index.update(self.make_event(cluster, rank, support)):
                new_ids.add(cid)
        report = QuantumReport(quantum=ctx.quantum, akg_stats=ctx.akg_stats)
        report.reported = self.index.reported()
        report.suppressed = self.index.suppressed()
        report.new_event_ids = new_ids
        report.dead_event_ids = dead_ids
        ctx.report = report
        ctx.timings.report = time.perf_counter() - t


class Pipeline:
    """An ordered list of stages run once per quantum.

    The default construction is :func:`build_stages`; callers may pass any
    stage sequence (wrapped, reordered, extended) as long as each stage's
    context inputs are produced by an earlier stage.
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        self.stages: List[Stage] = list(stages)

    def run(self, ctx: QuantumContext) -> QuantumContext:
        """Run every stage over ``ctx`` in order; returns ``ctx``."""
        for stage in self.stages:
            stage.run(ctx)
        return ctx

    def stage(self, name: str) -> Stage:
        """Look up a stage by its ``name`` (raises ``PipelineError``)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise PipelineError(f"no stage named {name!r} in pipeline")

    def names(self) -> List[str]:
        return [stage.name for stage in self.stages]


def build_stages(
    extractor,
    maintainer: ClusterMaintainer,
    builder: AkgBuilder,
    ranker: IncrementalRanker,
    tracker: EventTracker,
    report_index: ThresholdIndex,
    max_entities_per_record: int,
    ckg_stats: Optional[CkgStatsTracker] = None,
) -> List[Stage]:
    """The default six-stage pipeline over the given engine components."""
    return [
        ExtractStage(extractor, max_entities_per_record, ckg_stats),
        AkgUpdateStage(builder, maintainer),
        MaintainStage(maintainer),
        PropagateStage(maintainer, ranker),
        RankStage(ranker),
        ReportStage(tracker, ranker, report_index),
    ]


__all__ = [
    "QuantumContext",
    "Stage",
    "ExtractStage",
    "AkgUpdateStage",
    "MaintainStage",
    "PropagateStage",
    "RankStage",
    "ReportStage",
    "Pipeline",
    "build_stages",
]
