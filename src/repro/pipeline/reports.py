"""Pipeline output records: per-quantum reports and stage timings.

These dataclasses are the *products* of one run of the staged quantum
pipeline (:mod:`repro.pipeline.stages`).  They used to live in
:mod:`repro.core.engine`; they moved here with the Stage extraction so the
pipeline package is self-contained, and the engine re-exports them for
backwards compatibility (``from repro.core.engine import QuantumReport``
keeps working).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # type-only: keeps this module import-cycle free
    from repro.akg.builder import AkgQuantumStats


@dataclass(frozen=True)
class ReportedEvent:
    """One cluster as reported to the consumer at the end of a quantum."""

    event_id: int
    keywords: frozenset[str]
    rank: float
    support: float
    size: int
    num_edges: int
    born_quantum: int


@dataclass
class StageTimings:
    """Wall-clock seconds per pipeline stage of one (or many) quanta.

    ``extract`` was named ``tokenize`` before the extractor refactor (the
    stage now runs any :class:`~repro.extract.base.EntityExtractor`, not
    just text tokenisation); the old name survives as a read-only alias
    and v2 checkpoints are migrated on load.

    ``scatter`` and ``exchange`` are *sub-spans* of ``akg_update`` (the
    sharded stage's phase-one fan-out and phase-two EC round trip) and
    ``overlap_saved`` is wall time the pipelined session hid by running a
    quantum's serial tail under the next quantum's front — none of the
    three joins :attr:`total`, which stays the sum of the six exclusive
    stage slots.  All three are zero for serial/unpipelined sessions.
    """

    extract: float = 0.0
    akg_update: float = 0.0
    maintain: float = 0.0
    propagate: float = 0.0
    rank: float = 0.0
    report: float = 0.0
    scatter: float = 0.0
    exchange: float = 0.0
    overlap_saved: float = 0.0

    @property
    def tokenize(self) -> float:
        """Deprecated alias for :attr:`extract` (pre-refactor name)."""
        return self.extract

    @property
    def total(self) -> float:
        return (
            self.extract
            + self.akg_update
            + self.maintain
            + self.propagate
            + self.rank
            + self.report
        )

    def add(self, other: "StageTimings") -> None:
        """Accumulate another timing record into this one (for totals)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class QuantumReport:
    """Everything the detector learned in one quantum."""

    quantum: int
    reported: List[ReportedEvent] = field(default_factory=list)
    suppressed: List[ReportedEvent] = field(default_factory=list)
    new_event_ids: Set[int] = field(default_factory=set)
    dead_event_ids: Set[int] = field(default_factory=set)
    akg_stats: Optional["AkgQuantumStats"] = None
    ckg_nodes: Optional[int] = None
    ckg_edges: Optional[int] = None
    messages_processed: int = 0
    elapsed_seconds: float = 0.0
    timings: StageTimings = field(default_factory=StageTimings)
    changes: int = 0
    dirty_clusters: int = 0
    ranked_clusters: int = 0
    rank_cache_hits: int = 0

    def top(self, k: int) -> List[ReportedEvent]:
        return heapq.nlargest(k, self.reported, key=lambda e: e.rank)


__all__ = ["ReportedEvent", "StageTimings", "QuantumReport"]
