"""Batched hot-path stages (DESIGN.md Section 9).

The ``backend="batched"`` instantiation of the Stage seam: stage 1 extracts
a whole quantum straight into interned flat pair columns
(:class:`~repro.stream.window.QuantumColumns`), stage 2 feeds those columns
to the :class:`~repro.akg.builder.BatchedAkgBuilder` — no per-message
actor dict, no per-keyword user sets, no per-(keyword, user) blake2b calls.
Stages 3–6 are shared with the reference pipeline unchanged, which is most
of the bit-identity argument: everything downstream of the window indexes
sees exactly the values the reference stages would have produced.

The columns ride ``ctx.scratch`` (like the sharded front-end's slices): the
typed ``actor_entities`` / ``entity_actors`` context fields stay ``None``
because nothing downstream of the batched AKG stage reads them.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.interning import Interner
from repro.pipeline.stages import AkgUpdateStage, QuantumContext
from repro.stream.window import quantum_columns

if TYPE_CHECKING:
    from repro.akg.builder import BatchedAkgBuilder
    from repro.core.maintenance import ClusterMaintainer


class BatchedExtractStage:
    """Stage 1, batched: one quantum -> interned, deduplicated pair columns.

    The interner tables are the *builder's* (shared with its window index),
    so ids minted here are the ids the id-set index stores and the sketch
    kernel hashes — intern once per token per window residency, reuse
    everywhere.
    """

    name = "extract"

    def __init__(
        self,
        extractor,
        max_entities_per_record: int,
        ents: Interner,
        acts: Interner,
    ) -> None:
        self.extractor = extractor
        self.max_entities_per_record = max_entities_per_record
        self.ents = ents
        self.acts = acts

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        ctx.scratch["quantum_columns"] = quantum_columns(
            ctx.messages,
            self.extractor,
            self.max_entities_per_record,
            self.ents,
            self.acts,
        )
        ctx.timings.extract = time.perf_counter() - t


class BatchedAkgUpdateStage(AkgUpdateStage):
    """Stages 2+3, batched: feed the extraction columns to the builder."""

    name = "akg_update"

    def __init__(
        self, builder: "BatchedAkgBuilder", maintainer: "ClusterMaintainer"
    ) -> None:
        super().__init__(builder, maintainer)

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        maintain_before = self.maintainer.clustering_seconds
        columns = ctx.scratch.pop("quantum_columns")
        ctx.akg_stats = self.builder.process_columns(ctx.quantum, columns)
        ctx.scratch["maintain_seconds"] = (
            self.maintainer.clustering_seconds - maintain_before
        )
        ctx.timings.akg_update = time.perf_counter() - t


__all__ = ["BatchedAkgUpdateStage", "BatchedExtractStage"]
