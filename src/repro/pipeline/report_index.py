"""Incremental threshold / top-k index over the maintained ranking.

The report stage used to scan every ranked cluster each quantum to apply the
Section 7.2.2 filters (rank floor, noun check) — an O(live clusters) term in
an otherwise churn-proportional pipeline (the ROADMAP open item).  This index
closes that gap: it keeps one :class:`~repro.pipeline.reports.ReportedEvent`
entry per live reportable cluster together with its cached filter verdict,
and re-evaluates the filter predicate **only for entries that changed** — the
same dirty set the :class:`~repro.core.incremental.IncrementalRanker` already
maintains.  The filters are pure functions of the entry (DESIGN.md Section 6),
so an untouched verdict cannot go stale for the same reason an untouched rank
cannot.

Materialising the per-quantum output lists remains O(output) — that is the
size of the answer, not a sweep — and the rank-descending order is cached
between quanta so a churn-free quantum reuses the previous ordering.  The
index doubles as the session's default notification filter: the
``top(k)`` view is what a ``top_k``-limited subscription consults.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.pipeline.reports import ReportedEvent

FilterPredicate = Callable[[ReportedEvent], bool]
"""Pure report-time filter: True means the entry is reported, False means it
is suppressed.  Must depend only on the entry's own fields (and static
configuration) so cached verdicts stay exact."""


class ThresholdIndex:
    """Maintains filter verdicts and rank order over the live result list.

    ``update``/``remove`` mirror the ranker's per-quantum delta; ``reported``
    and ``suppressed`` materialise the two output lists in the exact order
    the pre-index report stage produced (rank-descending with cluster-id
    tie-break, and cluster-id order respectively) so the redesign is
    output-identical.  ``filter_evaluations`` counts predicate calls — the
    churn-proportionality regression tests assert it tracks the dirty set,
    not the live set.
    """

    def __init__(self, predicate: FilterPredicate) -> None:
        self.predicate = predicate
        self._entries: Dict[int, ReportedEvent] = {}
        self._passing: Dict[int, bool] = {}
        self._reported_cache: Optional[List[ReportedEvent]] = None
        self._suppressed_cache: Optional[List[ReportedEvent]] = None
        self.filter_evaluations = 0
        """Total predicate evaluations performed (work counter for tests)."""

    # ------------------------------------------------------------- updates

    def update(self, event: ReportedEvent) -> bool:
        """Insert or refresh one cluster's entry; returns True when it is new.

        The filter predicate is evaluated here — once per *changed* entry —
        and the verdict cached until the cluster is dirtied again.
        """
        cid = event.event_id
        fresh = cid not in self._entries
        self._entries[cid] = event
        self._passing[cid] = self.predicate(event)
        self.filter_evaluations += 1
        self._invalidate()
        return fresh

    def remove(self, cluster_id: int) -> bool:
        """Drop a cluster's entry; returns True when it was present."""
        if self._entries.pop(cluster_id, None) is None:
            return False
        del self._passing[cluster_id]
        self._invalidate()
        return True

    def _invalidate(self) -> None:
        self._reported_cache = None
        self._suppressed_cache = None

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, cluster_id: int) -> bool:
        return cluster_id in self._entries

    def alive_ids(self) -> Set[int]:
        """Ids of every live reportable cluster (reported or suppressed)."""
        return set(self._entries)

    def entries(self) -> Mapping[int, ReportedEvent]:
        """Read-only view of the maintained entries (tests, sessions)."""
        return self._entries

    def reported(self) -> List[ReportedEvent]:
        """Entries passing the filter, rank-descending (stable by id)."""
        if self._reported_cache is None:
            ordered = [
                self._entries[cid]
                for cid in sorted(self._entries)
                if self._passing[cid]
            ]
            ordered.sort(key=lambda e: e.rank, reverse=True)
            self._reported_cache = ordered
        return list(self._reported_cache)

    def suppressed(self) -> List[ReportedEvent]:
        """Entries failing the filter, in cluster-id order."""
        if self._suppressed_cache is None:
            self._suppressed_cache = [
                self._entries[cid]
                for cid in sorted(self._entries)
                if not self._passing[cid]
            ]
        return list(self._suppressed_cache)

    def top(self, k: int) -> List[ReportedEvent]:
        """The k highest-ranked reported entries (the top-k sink filter)."""
        return self.reported()[:k]

    # ------------------------------------------------------------ rebuild

    def rebuild(self, events: List[ReportedEvent]) -> Tuple[Set[int], Set[int]]:
        """Replace the whole index; returns ``(new_ids, dead_ids)``.

        Used by checkpoint restore (re-seeding from the ranker cache) and by
        oracle-mode pipelines, whose from-scratch ranking has no delta to
        apply incrementally.
        """
        previous = set(self._entries)
        self._entries = {}
        self._passing = {}
        for event in events:
            self._entries[event.event_id] = event
            self._passing[event.event_id] = self.predicate(event)
            self.filter_evaluations += 1
        self._invalidate()
        current = set(self._entries)
        return current - previous, previous - current


__all__ = ["ThresholdIndex", "FilterPredicate"]
