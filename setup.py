"""Packaging for the repro package (src layout).

Kept as a plain setup.py: this environment lacks the `wheel` package, so
PEP 660 editable installs fail; `pip install -e . --no-use-pep517` uses
this directly.

The core package is dependency-free pure python.  ``numpy`` is an
*optional* accelerator: when importable, the batched backend
(``DetectorConfig.backend = "batched"``) switches its window id-set and
MinHash kernels to vectorized array engines that are bit-identical to the
pure-python fallbacks (see DESIGN.md Section 9).  Install it via the
``fast`` extra::

    pip install -e .[fast] --no-use-pep517

CI exercises both legs: the default numpy leg and a pure-python leg with
``REPRO_PURE_PYTHON=1`` forcing the fallback engines.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.7.0",
    description=(
        "Reproduction of 'Real Time Discovery of Dense Clusters in Highly "
        "Dynamic Graphs' (PVLDB 2012): streaming AKG maintenance and dense "
        "cluster detection"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    extras_require={
        "fast": ["numpy"],
        # The serving layer (repro.serve / `repro serve`) is deliberately
        # stdlib-only: asyncio front door, hand-rolled HTTP + RFC 6455.
        # The empty marker documents that, and gives deployments a stable
        # name to pin should the layer ever grow optional accelerators.
        "serve": [],
    },
)
